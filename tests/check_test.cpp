// casa::check — one deliberately corrupted fixture per rule family, each
// asserting the exact rule id it must trigger, plus clean-artifact runs
// proving the analyzer stays silent on well-formed pipeline products.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "casa/check/rule_ids.hpp"
#include "casa/check/rules.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/core/formulation.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::check {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

bool has_rule(const CheckRunner& r, const std::string& rule) {
  return std::any_of(r.diagnostics().begin(), r.diagnostics().end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

/// Small three-object program (main + two leaf bodies) with its real
/// pipeline products; the corruption tests mutate copies of these.
struct Fixture {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;

  Fixture()
      : program(make()),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        layout(traceopt::layout_all(tp)) {}

  static prog::Program make() {
    ProgramBuilder b("fx");
    b.function("main", [](FunctionScope& f) {
      f.loop(100, [](FunctionScope& l) {
        l.call("f1");
        l.call("f2");
      });
    });
    b.function("f1", [](FunctionScope& f) { f.code(64, "body1"); });
    b.function("f2", [](FunctionScope& f) { f.code(64, "body2"); });
    return b.build();
  }
  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.cache_line_size = 16;
    o.max_trace_size = 64;
    return o;
  }
  /// Plenty of sets: with layout_all the whole program spans fewer lines
  /// than this cache has sets, so no two objects share a set.
  static cachesim::CacheConfig big_cache() {
    cachesim::CacheConfig c;
    c.size = 4096;
    c.line_size = 16;
    c.associativity = 1;
    return c;
  }
  /// Tiny direct-mapped cache that real conflict graphs are built against.
  static cachesim::CacheConfig small_cache() {
    cachesim::CacheConfig c;
    c.size = 128;
    c.line_size = 16;
    c.associativity = 1;
    return c;
  }

  /// Rebuilds a TraceProgram over the same program with replaced objects.
  traceopt::TraceProgram with_objects(
      std::vector<traceopt::MemoryObject> objects) const {
    std::vector<MemoryObjectId> object_of;
    std::vector<Bytes> offsets;
    object_of.reserve(program.block_count());
    offsets.reserve(program.block_count());
    for (std::size_t bb = 0; bb < program.block_count(); ++bb) {
      const BasicBlockId id(static_cast<std::uint32_t>(bb));
      object_of.push_back(tp.object_of(id));
      offsets.push_back(tp.block_offset(id));
    }
    return traceopt::TraceProgram(program, std::move(objects),
                                  std::move(object_of), std::move(offsets));
  }
};

// ---------------------------------------------------------------------------
// Trace-program rules.

TEST(CheckTrace, CleanProgramPasses) {
  const Fixture fx;
  CheckRunner r;
  check_trace_program(fx.tp, 16, r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.diagnostics().empty());
  EXPECT_EQ(r.rules_evaluated(), 3u);
}

TEST(CheckTrace, MisalignedPadTriggersRule) {
  const Fixture fx;
  auto objects = fx.tp.objects();
  objects[1].padded_size = objects[1].raw_size + 3;  // not a line multiple
  const traceopt::TraceProgram bad = fx.with_objects(std::move(objects));
  CheckRunner r;
  check_trace_program(bad, 16, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_rule(r, "trace.pad.misaligned"));
}

TEST(CheckTrace, OverPaddedObjectTriggersRule) {
  const Fixture fx;
  auto objects = fx.tp.objects();
  objects[1].padded_size += 32;  // aligned, but two lines more than needed
  const traceopt::TraceProgram bad = fx.with_objects(std::move(objects));
  CheckRunner r;
  check_trace_program(bad, 16, r);
  EXPECT_TRUE(has_rule(r, "trace.pad.inconsistent"));
  EXPECT_FALSE(has_rule(r, "trace.pad.misaligned"));
}

TEST(CheckTrace, EmptyObjectTriggersRule) {
  const Fixture fx;
  auto objects = fx.tp.objects();
  objects[0].raw_size = 0;
  objects[0].padded_size = 0;
  const traceopt::TraceProgram bad = fx.with_objects(std::move(objects));
  CheckRunner r;
  check_trace_program(bad, 16, r);
  EXPECT_TRUE(has_rule(r, "trace.size.zero"));
}

// ---------------------------------------------------------------------------
// Layout rules.

TEST(CheckLayout, CleanLayoutPasses) {
  const Fixture fx;
  CheckRunner r;
  check_layout(fx.tp, fx.layout, 16, r);
  EXPECT_TRUE(r.ok());
}

TEST(CheckLayout, OverlappingObjectsTriggerRule) {
  const Fixture fx;
  std::vector<Addr> bases(fx.tp.object_count());
  for (std::size_t i = 0; i < bases.size(); ++i) bases[i] = 0;  // all collide
  const traceopt::Layout bad(fx.tp, std::move(bases), 0,
                             fx.tp.padded_code_size());
  CheckRunner r;
  check_layout(fx.tp, bad, 16, r);
  EXPECT_TRUE(has_rule(r, "layout.overlap"));
}

TEST(CheckLayout, MisalignedBaseTriggersRule) {
  const Fixture fx;
  std::vector<Addr> bases;
  Addr next = 8;  // off the 16-byte line grid
  for (const auto& mo : fx.tp.objects()) {
    bases.push_back(next);
    next += mo.padded_size;
  }
  const traceopt::Layout bad(fx.tp, std::move(bases), 0, next);
  CheckRunner r;
  check_layout(fx.tp, bad, 16, r);
  EXPECT_TRUE(has_rule(r, "layout.alignment"));
}

TEST(CheckLayout, ObjectOutsideWindowTriggersRule) {
  const Fixture fx;
  std::vector<Addr> bases;
  Addr next = 0;
  for (const auto& mo : fx.tp.objects()) {
    bases.push_back(next);
    next += mo.padded_size;
  }
  const traceopt::Layout bad(fx.tp, std::move(bases), 0, 16);  // tiny window
  CheckRunner r;
  check_layout(fx.tp, bad, 16, r);
  EXPECT_TRUE(has_rule(r, "layout.span.inconsistent"));
}

// ---------------------------------------------------------------------------
// Conflict-graph rules.

TEST(CheckConflict, RealGraphPasses) {
  const Fixture fx;
  conflict::BuildOptions opt;
  opt.cache = Fixture::small_cache();
  const conflict::ConflictGraph g =
      conflict::build_conflict_graph(fx.tp, fx.layout, fx.exec.walk, opt);
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, opt.cache, r);
  EXPECT_TRUE(r.ok()) << r.summary();
}

/// Hand-builds a graph whose per-node bookkeeping is consistent (hits +
/// cold + sum m_ij == fetches) so only the deliberately planted defect
/// fires.
conflict::ConflictGraph consistent_graph(const Fixture& fx,
                                         std::vector<conflict::Edge> edges) {
  const std::size_t n = fx.tp.object_count();
  std::vector<std::uint64_t> fetches(n), cold(n, 0), hits(n);
  std::vector<std::uint64_t> conflict_misses(n, 0);
  for (const conflict::Edge& e : edges) {
    conflict_misses[e.from.index()] += e.misses;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    fetches[i] = fx.tp.object(mo).fetches;
    hits[i] = fetches[i] - conflict_misses[i];  // underflow-free by fixture
  }
  return conflict::ConflictGraph(n, std::move(fetches), std::move(cold),
                                 std::move(hits), std::move(edges));
}

TEST(CheckConflict, CrossSetEdgeTriggersRule) {
  const Fixture fx;
  // Under big_cache every object owns private sets, so any edge is bogus.
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(1), MemoryObjectId(2), 5}};
  const conflict::ConflictGraph g = consistent_graph(fx, std::move(edges));
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, Fixture::big_cache(), r);
  EXPECT_TRUE(has_rule(r, "conflict.edge.cross-set"));
  EXPECT_FALSE(has_rule(r, "conflict.counts.inconsistent"));
}

TEST(CheckConflict, ImpossibleSelfEdgeTriggersRule) {
  const Fixture fx;
  // Object 1 spans far fewer lines than big_cache has sets: it can never
  // evict itself.
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(1), MemoryObjectId(1), 3}};
  const conflict::ConflictGraph g = consistent_graph(fx, std::move(edges));
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, Fixture::big_cache(), r);
  EXPECT_TRUE(has_rule(r, "conflict.edge.self"));
}

TEST(CheckConflict, EdgeWeightAboveFetchesTriggersRule) {
  const Fixture fx;
  const std::uint64_t f1 = fx.tp.object(MemoryObjectId(1)).fetches;
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(1), MemoryObjectId(2), f1 + 1}};
  const std::size_t n = fx.tp.object_count();
  std::vector<std::uint64_t> fetches(n), cold(n, 0), hits(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    fetches[i] = fx.tp.object(MemoryObjectId(static_cast<std::uint32_t>(i)))
                     .fetches;
    hits[i] = fetches[i];
  }
  const conflict::ConflictGraph g(n, std::move(fetches), std::move(cold),
                                  std::move(hits), std::move(edges));
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, Fixture::small_cache(), r);
  EXPECT_TRUE(has_rule(r, "conflict.edge.exceeds-fetches"));
}

TEST(CheckConflict, BrokenBookkeepingTriggersRule) {
  const Fixture fx;
  const std::size_t n = fx.tp.object_count();
  std::vector<std::uint64_t> fetches(n), cold(n, 0), hits(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    fetches[i] = fx.tp.object(MemoryObjectId(static_cast<std::uint32_t>(i)))
                     .fetches;
    hits[i] = fetches[i];
  }
  hits[0] -= 1;  // one fetch vanishes from the books
  const conflict::ConflictGraph g(n, std::move(fetches), std::move(cold),
                                  std::move(hits), {});
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, Fixture::small_cache(), r);
  EXPECT_TRUE(has_rule(r, "conflict.counts.inconsistent"));
}

TEST(CheckConflict, ProfileMismatchTriggersRule) {
  const Fixture fx;
  const std::size_t n = fx.tp.object_count();
  std::vector<std::uint64_t> fetches(n), cold(n, 0), hits(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    fetches[i] = fx.tp.object(MemoryObjectId(static_cast<std::uint32_t>(i)))
                     .fetches;
    hits[i] = fetches[i];
  }
  fetches[1] += 7;  // vertex weight drifts from the profile
  hits[1] += 7;     // keep the books internally consistent
  const conflict::ConflictGraph g(n, std::move(fetches), std::move(cold),
                                  std::move(hits), {});
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, Fixture::small_cache(), r);
  EXPECT_TRUE(has_rule(r, "conflict.fetches.profile-mismatch"));
  EXPECT_FALSE(has_rule(r, "conflict.counts.inconsistent"));
}

TEST(CheckConflict, NodeCountMismatchTriggersRule) {
  const Fixture fx;
  const conflict::ConflictGraph g(1, {10}, {0}, {10}, {});
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, Fixture::small_cache(), r);
  EXPECT_TRUE(has_rule(r, "conflict.nodes.count"));
}

TEST(CheckConflict, DegenerateCacheTriggersRule) {
  const Fixture fx;
  const std::size_t n = fx.tp.object_count();
  const conflict::ConflictGraph g(n, std::vector<std::uint64_t>(n, 1),
                                  std::vector<std::uint64_t>(n, 0),
                                  std::vector<std::uint64_t>(n, 1), {});
  cachesim::CacheConfig degenerate;
  degenerate.size = 8;  // below line_size * associativity
  degenerate.line_size = 16;
  degenerate.associativity = 1;
  CheckRunner r;
  check_conflict_graph(fx.tp, fx.layout, g, degenerate, r);
  EXPECT_TRUE(has_rule(r, "conflict.cache.degenerate"));
}

// ---------------------------------------------------------------------------
// ILP-model rules.

/// Two items (100 B and 50 B) with one conflict edge; capacity 120 B.
core::SavingsProblem two_item_problem() {
  core::SavingsProblem sp;
  sp.object_of = {MemoryObjectId(0), MemoryObjectId(1)};
  sp.value = {10.0, 5.0};
  sp.weight = {100, 50};
  sp.edges = {{0, 1, 4.0}};
  sp.capacity = 120;
  return sp;
}

TEST(CheckModel, BuiltModelsPassBothLinearizations) {
  const core::SavingsProblem sp = two_item_problem();
  for (const auto lin :
       {core::Linearization::kPaper, core::Linearization::kTight}) {
    const core::CasaModel cm = core::build_casa_model(sp, lin);
    CheckRunner r;
    check_casa_model(cm, sp, lin, r);
    EXPECT_TRUE(r.ok()) << r.summary();
  }
}

/// Hand-built paper-mode model; `skip` names a linearization row to omit.
core::CasaModel handmade_model(const core::SavingsProblem& sp,
                               bool binary_L, bool with_cap, double cap_rhs,
                               int skip_lin_row = -1) {
  core::CasaModel cm;
  ilp::Model& m = cm.model;
  const VarId l0 = m.add_binary("l0");
  const VarId l1 = m.add_binary("l1");
  const VarId L = binary_L ? m.add_binary("L01")
                           : m.add_continuous("L01", 0.0, 1.0);
  cm.l_vars = {l0, l1};
  cm.L_vars = {L};
  ilp::LinExpr obj;
  obj.add(l0, 1.0).add(l1, 1.0).add(L, 1.0);
  m.set_objective(ilp::Sense::kMinimize, obj);
  if (skip_lin_row != 0) {
    m.add_constraint("lin13", ilp::LinExpr().add(l0, 1.0).add(L, -1.0),
                     ilp::Rel::kGreaterEq, 0.0);
  }
  if (skip_lin_row != 1) {
    m.add_constraint("lin14", ilp::LinExpr().add(l1, 1.0).add(L, -1.0),
                     ilp::Rel::kGreaterEq, 0.0);
  }
  if (skip_lin_row != 2) {
    m.add_constraint("lin15",
                     ilp::LinExpr().add(l0, 1.0).add(l1, 1.0).add(L, -2.0),
                     ilp::Rel::kLessEq, 1.0);
  }
  if (with_cap) {
    m.add_constraint("capacity",
                     ilp::LinExpr()
                         .add(l0, static_cast<double>(sp.weight[0]))
                         .add(l1, static_cast<double>(sp.weight[1])),
                     ilp::Rel::kGreaterEq, cap_rhs);
  }
  return cm;
}

TEST(CheckModel, HandmadeWellFormedModelPasses) {
  const core::SavingsProblem sp = two_item_problem();
  const core::CasaModel cm = handmade_model(sp, true, true, 30.0);
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(CheckModel, MissingLinearizationRowTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  for (int skip = 0; skip < 3; ++skip) {
    const core::CasaModel cm = handmade_model(sp, true, true, 30.0, skip);
    CheckRunner r;
    check_casa_model(cm, sp, core::Linearization::kPaper, r);
    EXPECT_TRUE(has_rule(r, "ilp.lin.missing")) << "skipped row " << skip;
  }
}

TEST(CheckModel, ContinuousLUnderPaperModeTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  const core::CasaModel cm = handmade_model(sp, false, true, 30.0);
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(has_rule(r, "ilp.lin.malformed"));
}

TEST(CheckModel, MissingCapacityRowTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  const core::CasaModel cm = handmade_model(sp, true, false, 0.0);
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(has_rule(r, "ilp.capacity.missing"));
}

TEST(CheckModel, WrongCapacityRhsTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  const core::CasaModel cm = handmade_model(sp, true, true, 29.0);
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(has_rule(r, "ilp.capacity.mismatch"));
}

TEST(CheckModel, OrphanVariableTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  core::CasaModel cm = handmade_model(sp, true, true, 30.0);
  cm.model.add_binary("stray");
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(has_rule(r, "ilp.var.orphan"));
}

TEST(CheckModel, EmptyConstraintTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  core::CasaModel cm = handmade_model(sp, true, true, 30.0);
  cm.model.add_constraint("ghost", ilp::LinExpr().add_constant(1.0),
                          ilp::Rel::kLessEq, 2.0);
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(has_rule(r, "ilp.row.degenerate"));
}

TEST(CheckModel, VariableCountMismatchTriggersRule) {
  const core::SavingsProblem sp = two_item_problem();
  core::CasaModel cm = handmade_model(sp, true, true, 30.0);
  cm.L_vars.clear();  // claims zero edges for a one-edge problem
  CheckRunner r;
  check_casa_model(cm, sp, core::Linearization::kPaper, r);
  EXPECT_TRUE(has_rule(r, "ilp.var.count-mismatch"));
}

// ---------------------------------------------------------------------------
// Allocation rules.

TEST(CheckAllocation, CleanSelectionPasses) {
  CheckRunner r;
  check_spm_selection({100, 50}, 120, {false, true}, 50, r);
  EXPECT_TRUE(r.ok());
}

TEST(CheckAllocation, OverCapacityTriggersRule) {
  CheckRunner r;
  check_spm_selection({100, 50}, 120, {true, true}, 150, r);
  EXPECT_TRUE(has_rule(r, "alloc.capacity.exceeded"));
  EXPECT_FALSE(has_rule(r, "alloc.used-bytes.mismatch"));
}

TEST(CheckAllocation, WrongUsedBytesTriggersRule) {
  CheckRunner r;
  check_spm_selection({100, 50}, 120, {false, true}, 49, r);
  EXPECT_TRUE(has_rule(r, "alloc.used-bytes.mismatch"));
}

TEST(CheckAllocation, MaskSizeMismatchTriggersRule) {
  CheckRunner r;
  check_spm_selection({100, 50}, 120, {true}, 100, r);
  EXPECT_TRUE(has_rule(r, "alloc.mask.size"));
}

TEST(CheckAllocation, TruncatedSolveTriggersRule) {
  core::CasaProblem p;
  p.sizes = {100, 50};
  p.capacity = 120;
  core::AllocationResult a;
  a.on_spm = {false, true};
  a.used_bytes = 50;
  a.solver_status = ilp::SolveStatus::kLimit;
  CheckRunner r;
  check_allocation(p, a, r);
  EXPECT_TRUE(has_rule(r, "alloc.solver.truncated"));

  a.solver_status = ilp::SolveStatus::kOptimal;
  CheckRunner clean;
  check_allocation(p, a, clean);
  EXPECT_TRUE(clean.ok());
}

// ---------------------------------------------------------------------------
// Energy rules.

energy::EnergyTable sane_table() {
  energy::EnergyTable t;
  t.cache_hit = 0.5;
  t.cache_miss = 12.0;
  t.spm_access = 0.2;
  t.mainmem_word = 8.0;
  return t;
}

TEST(CheckEnergy, SaneTablePasses) {
  CheckRunner r;
  check_energy_table(sane_table(), true, false, r);
  EXPECT_TRUE(r.ok());
}

TEST(CheckEnergy, InvertedMissHitTriggersRule) {
  energy::EnergyTable t = sane_table();
  t.cache_miss = t.cache_hit / 2;  // a miss cheaper than a hit
  CheckRunner r;
  check_energy_table(t, true, false, r);
  EXPECT_TRUE(has_rule(r, "energy.order.miss-hit"));
}

TEST(CheckEnergy, ScratchpadAboveCacheHitTriggersRule) {
  energy::EnergyTable t = sane_table();
  t.spm_access = t.cache_hit * 2;
  CheckRunner r;
  check_energy_table(t, true, false, r);
  EXPECT_TRUE(has_rule(r, "energy.order.hit-spm"));
}

TEST(CheckEnergy, ScratchpadOrderIgnoredWithoutSpm) {
  energy::EnergyTable t = sane_table();
  t.spm_access = t.cache_hit * 2;
  CheckRunner r;
  check_energy_table(t, false, false, r);
  EXPECT_FALSE(has_rule(r, "energy.order.hit-spm"));
}

TEST(CheckEnergy, NonFiniteEntryTriggersRule) {
  energy::EnergyTable t = sane_table();
  t.mainmem_word = std::nan("");
  CheckRunner r;
  check_energy_table(t, true, false, r);
  EXPECT_TRUE(has_rule(r, "energy.value.invalid"));
}

TEST(CheckEnergy, MissingLoopCacheEnergiesTriggerRule) {
  CheckRunner r;
  check_energy_table(sane_table(), false, true, r);  // lc energies left at 0
  EXPECT_TRUE(has_rule(r, "energy.value.invalid"));
}

TEST(CheckEnergy, DefaultTechnologyScalesMonotonically) {
  CheckRunner r;
  check_energy_scaling(energy::TechnologyParams{}, r);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(CheckEnergy, BrokenTechnologyTriggersMonotoneRule) {
  energy::TechnologyParams tech;
  tech.c_bitline_per_cell = -50.0;  // capacity now *reduces* bitline cost
  CheckRunner r;
  check_energy_scaling(tech, r);
  EXPECT_TRUE(has_rule(r, "energy.sram.non-monotone"));
}

// ---------------------------------------------------------------------------
// Runner mechanics and the JSON artifact.

TEST(CheckRunnerTest, ThrowIfErrorsThrowsOnlyOnErrors) {
  CheckRunner r;
  r.warn("demo.warn", "artifact", "loc", "message");
  EXPECT_NO_THROW(r.throw_if_errors());
  r.error("demo.error", "artifact", "loc", "message");
  EXPECT_FALSE(r.ok());
  EXPECT_THROW(r.throw_if_errors(), CheckError);
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 1u);
}

TEST(CheckRunnerTest, SummaryReportsCounts) {
  CheckRunner r;
  r.mark_evaluated(5);
  EXPECT_EQ(r.summary(), "casa-check: OK (5 rules evaluated)");
  r.error("demo.error", "a", "l", "m");
  EXPECT_NE(r.summary().find("1 error"), std::string::npos);
}

TEST(CheckRunnerTest, JsonArtifactCarriesSchemaAndRuleIds) {
  CheckRunner r;
  r.mark_evaluated(2);
  r.error("demo.rule", "artifact", "x1", "a \"quoted\" message", "fix it");
  std::ostringstream os;
  write_check_json(os, r, "check_test");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"casa-check v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"demo.rule\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

TEST(BatchRules, CleanBatchStaysSilent) {
  BatchSummary batch;
  batch.jobs = 8;
  CheckRunner r;
  check_batch(batch, r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.diagnostics().empty());
  EXPECT_EQ(r.rules_evaluated(), 1u);  // evaluated, silent — not skipped
}

TEST(BatchRules, PartialFailureWarnsAndListsTheDead) {
  BatchSummary batch;
  batch.jobs = 8;
  batch.failed = 2;
  batch.retried = 1;
  batch.failures = {"job 3: fault: injected fault at fault.sim.finish",
                    "job 5: solve: infeasible"};
  CheckRunner r;
  check_batch(batch, r);
  ASSERT_TRUE(has_rule(r, std::string(rule_ids::kRunPartialFailure)));
  EXPECT_TRUE(r.ok());  // degraded is a warning, not an error
  ASSERT_EQ(r.diagnostics().size(), 1u);
  const Diagnostic& d = r.diagnostics()[0];
  EXPECT_NE(d.message.find("2 of 8 jobs failed"), std::string::npos);
  EXPECT_NE(d.message.find("1 more recovered after retries"),
            std::string::npos);
  EXPECT_NE(d.hint.find("job 3"), std::string::npos);
  EXPECT_NE(d.hint.find("job 5"), std::string::npos);
}

TEST(BatchRules, TotalFailureIsAnErrorWithCappedDetail) {
  BatchSummary batch;
  batch.jobs = 6;
  batch.failed = 6;
  for (int i = 0; i < 6; ++i) {
    batch.failures.push_back("job " + std::to_string(i) + ": fault: boom");
  }
  CheckRunner r;
  check_batch(batch, r);
  EXPECT_FALSE(r.ok());
  EXPECT_THROW(r.throw_if_errors(), CheckError);
  ASSERT_EQ(r.diagnostics().size(), 1u);
  const Diagnostic& d = r.diagnostics()[0];
  EXPECT_NE(d.message.find("every job in the batch failed"),
            std::string::npos);
  // A poisoned 64-point sweep must read as one diagnostic, not 64: the
  // hint lists at most four failures and summarises the rest.
  EXPECT_NE(d.hint.find("job 3"), std::string::npos);
  EXPECT_EQ(d.hint.find("job 4"), std::string::npos);
  EXPECT_NE(d.hint.find("... 2 more of 6 total failures"), std::string::npos);
}

TEST(BatchRules, CappedHintReportsTotalFailedCount) {
  // Regression: the truncated hint used to say only "... N more", hiding
  // how many jobs actually failed in a large degraded sweep.
  BatchSummary batch;
  batch.jobs = 64;
  batch.failed = 64;
  for (int i = 0; i < 64; ++i) {
    batch.failures.push_back("job " + std::to_string(i) + ": fault: boom");
  }
  CheckRunner r;
  check_batch(batch, r);
  ASSERT_EQ(r.diagnostics().size(), 1u);
  const Diagnostic& d = r.diagnostics()[0];
  EXPECT_NE(d.hint.find("... 60 more of 64 total failures"),
            std::string::npos);
}

}  // namespace
}  // namespace casa::check

// Fault-injection suite: the casa::fault framework and the containment
// contract it exists to prove.
//
// Three layers. Unit tests pin the spec grammar, arming validation, arg
// targeting, hit windows, fire budgets, the seeded probability coin, the
// deterministic corrupt action, and run_with_retry. Artifact tests drive
// obs::write_artifact_guarded through every action and assert that a
// retried or corrupted write still commits a clean payload. The matrix
// tests inject at every simulation/solver/sweep site through
// Workbench::evaluate_batch and SweepPlanner::run_jobs and hold the
// isolation invariant: the targeted job fails (or retries) alone, every
// other job's
// Outcome is bit-identical to a fault-free run, for any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/report/workbench.hpp"
#include "casa/sim/sweep_planner.hpp"
#include "casa/support/error.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa {
namespace {

using report::BatchOptions;
using report::JobResult;
using report::JobStatus;
using report::Outcome;
using report::Workbench;
using Job = Workbench::Job;
namespace sites = fault::site_names;

/// Armed specs are process-global: every test disarms on the way out so a
/// failing assertion cannot poison its neighbours.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm();
    fault::set_injection_hook(nullptr);
    obs::Tracer::set_current(nullptr);
  }
};

cachesim::CacheConfig cache_cfg(
    Bytes size, unsigned assoc = 1,
    cachesim::ReplacementPolicy policy = cachesim::ReplacementPolicy::kLru) {
  cachesim::CacheConfig cfg;
  cfg.size = size;
  cfg.line_size = 16;
  cfg.associativity = assoc;
  cfg.policy = policy;
  return cfg;
}

const prog::Program& adpcm() {
  static const prog::Program program = workloads::by_name("adpcm");
  return program;
}

const Workbench& bench() {
  static const Workbench b(adpcm());
  return b;
}

/// Job 0 is the injection target (specs pin arg=0); jobs 1 and 2 are the
/// bystanders whose outcomes must not move.
std::vector<Job> matrix_jobs() {
  std::vector<Job> jobs;
  jobs.push_back(Job::casa_job(cache_cfg(128), 256));
  jobs.push_back(Job::casa_job(cache_cfg(256), 256));
  jobs.push_back(Job::cache_only_job(cache_cfg(256, 2)));
  return jobs;
}

void expect_outcome_eq(const Outcome& a, const Outcome& b, std::size_t i) {
  const memsim::SimCounters& x = a.sim.counters;
  const memsim::SimCounters& y = b.sim.counters;
  EXPECT_EQ(x.total_fetches, y.total_fetches) << "job " << i;
  EXPECT_EQ(x.spm_accesses, y.spm_accesses) << "job " << i;
  EXPECT_EQ(x.cache_accesses, y.cache_accesses) << "job " << i;
  EXPECT_EQ(x.cache_hits, y.cache_hits) << "job " << i;
  EXPECT_EQ(x.cache_misses, y.cache_misses) << "job " << i;
  EXPECT_EQ(x.cache_evictions, y.cache_evictions) << "job " << i;
  EXPECT_EQ(x.mainmem_words, y.mainmem_words) << "job " << i;
  EXPECT_EQ(x.cycles, y.cycles) << "job " << i;
  EXPECT_EQ(a.sim.total_energy, b.sim.total_energy) << "job " << i;
  EXPECT_EQ(a.object_count, b.object_count) << "job " << i;
  EXPECT_EQ(a.spm_used, b.spm_used) << "job " << i;
  ASSERT_EQ(a.flow(), b.flow()) << "job " << i;
  if (a.flow() == report::FlowKind::kCasa) {
    EXPECT_EQ(a.alloc().on_spm, b.alloc().on_spm) << "job " << i;
    EXPECT_EQ(a.alloc().used_bytes, b.alloc().used_bytes) << "job " << i;
  }
}

std::string spec_for(std::string_view site, std::string_view action,
                     const std::string& extras = "") {
  std::string s = "site=" + std::string(site) + ",action=" +
                  std::string(action);
  if (!extras.empty()) s += "," + extras;
  return s;
}

// ---------------------------------------------------------------- grammar

TEST_F(FaultTest, ParsesTheSpecGrammar) {
  const fault::FaultSpec spec = fault::parse_spec(
      "seed=7;site=fault.solver.allocate,action=transient,arg=3,hits=2,"
      "count=4,delay_us=50,p=0.25;site=fault.sim.finish");
  EXPECT_EQ(spec.seed, 7u);
  ASSERT_EQ(spec.sites.size(), 2u);
  const fault::SiteSpec& s0 = spec.sites[0];
  EXPECT_EQ(s0.site, "fault.solver.allocate");
  EXPECT_EQ(s0.action, fault::Action::kTransient);
  EXPECT_EQ(s0.arg, 3u);
  EXPECT_EQ(s0.hits_from, 2u);
  EXPECT_EQ(s0.max_fires, 4u);
  EXPECT_EQ(s0.delay_us, 50u);
  EXPECT_DOUBLE_EQ(s0.probability, 0.25);
  // Clause two keeps every default: throw, any arg, first hit, no budget.
  const fault::SiteSpec& s1 = spec.sites[1];
  EXPECT_EQ(s1.site, "fault.sim.finish");
  EXPECT_EQ(s1.action, fault::Action::kThrow);
  EXPECT_EQ(s1.arg, fault::kAnyArg);
  EXPECT_EQ(s1.hits_from, 1u);
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parse_spec(""), PreconditionError);
  EXPECT_THROW(fault::parse_spec("seed=3"), PreconditionError);  // no sites
  EXPECT_THROW(fault::parse_spec("action=throw"), PreconditionError);
  EXPECT_THROW(fault::parse_spec("site=fault.sim.finish,bogus=1"),
               PreconditionError);
  EXPECT_THROW(fault::parse_spec("site=fault.sim.finish,action=explode"),
               PreconditionError);
  EXPECT_THROW(fault::parse_spec("site=fault.sim.finish,arg=4x"),
               PreconditionError);
}

TEST_F(FaultTest, ArmRejectsUnregisteredSitesAndDeadClauses) {
  EXPECT_THROW(fault::arm(fault::parse_spec("site=fault.no.such_site")),
               PreconditionError);
  EXPECT_THROW(fault::arm(fault::parse_spec("site=fault.sim.finish,hits=0")),
               PreconditionError);
  EXPECT_THROW(fault::arm(fault::parse_spec("site=fault.sim.finish,count=0")),
               PreconditionError);
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::armed_site_count(), 0u);
}

// --------------------------------------------------------------- behaviour

TEST_F(FaultTest, DisarmedSitesAreNoOps) {
  fault::disarm();
  EXPECT_NO_THROW(fault::at(sites::kSimPrepare));
  std::string payload = "payload";
  EXPECT_FALSE(fault::corrupt_payload(sites::kIoMetricsWrite, payload));
  EXPECT_EQ(payload, "payload");
}

TEST_F(FaultTest, FiresOnlyForTheMatchingArg) {
  fault::arm(fault::parse_spec(spec_for(sites::kSimPrepare, "throw", "arg=3")));
  EXPECT_EQ(fault::armed_site_count(), 1u);
  EXPECT_NO_THROW(fault::at(sites::kSimPrepare));  // no arg bound
  {
    const fault::ScopedArg outer(2);
    EXPECT_NO_THROW(fault::at(sites::kSimPrepare));
    {
      const fault::ScopedArg inner(3);
      EXPECT_EQ(fault::current_arg(), 3u);
      EXPECT_THROW(fault::at(sites::kSimPrepare), fault::FaultError);
    }
    // Nested scopes restore the previous binding.
    EXPECT_EQ(fault::current_arg(), 2u);
    EXPECT_NO_THROW(fault::at(sites::kSimPrepare));
  }
  EXPECT_THROW(fault::at(sites::kSimPrepare, 3), fault::FaultError);
  EXPECT_NO_THROW(fault::at(sites::kSimFinish, 3));  // other sites untouched
  try {
    fault::at(sites::kSimPrepare, 3);
    FAIL() << "expected FaultError";
  } catch (const fault::FaultError& e) {
    EXPECT_NE(std::string(e.what()).find(sites::kSimPrepare),
              std::string::npos);
  }
}

TEST_F(FaultTest, HonoursHitWindowAndFireBudget) {
  fault::arm(fault::parse_spec(
      spec_for(sites::kSimPrepare, "throw", "hits=2,count=1")));
  EXPECT_NO_THROW(fault::at(sites::kSimPrepare));          // hit 1: windowed out
  EXPECT_THROW(fault::at(sites::kSimPrepare), fault::FaultError);  // hit 2
  EXPECT_NO_THROW(fault::at(sites::kSimPrepare));          // budget exhausted
  const fault::InjectorStats st = fault::stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.fires, 1u);
  EXPECT_EQ(st.throws_, 1u);
}

TEST_F(FaultTest, TransientAndDelayActions) {
  fault::arm(fault::parse_spec(spec_for(sites::kSimFinish, "transient")));
  try {
    fault::at(sites::kSimFinish);
    FAIL() << "expected TransientError";
  } catch (const fault::TransientError&) {
  }
  fault::arm(fault::parse_spec(
      spec_for(sites::kSimFinish, "delay", "delay_us=1,count=2")));
  EXPECT_NO_THROW(fault::at(sites::kSimFinish));
  EXPECT_NO_THROW(fault::at(sites::kSimFinish));
  EXPECT_EQ(fault::stats().delays, 2u);
}

TEST_F(FaultTest, ProbabilityCoinIsSeededAndDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    std::string spec = spec_for(sites::kSolverAllocate, "throw", "p=0.4");
    spec += ";seed=" + std::to_string(seed);
    fault::arm(fault::parse_spec(spec));
    std::vector<bool> fired;
    for (std::uint64_t arg = 0; arg < 64; ++arg) {
      bool f = false;
      try {
        fault::at(sites::kSolverAllocate, arg);
      } catch (const fault::FaultError&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  const std::vector<bool> a = pattern(11);
  const std::vector<bool> b = pattern(11);
  EXPECT_EQ(a, b);  // same seed, same visit sequence -> same coins
  std::size_t fires = 0;
  for (const bool f : a) fires += f ? 1u : 0u;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  EXPECT_NE(a, pattern(12345));  // a different seed moves the pattern
}

TEST_F(FaultTest, CorruptPayloadIsDeterministic) {
  const std::string original = "0123456789abcdef0123456789abcdef";
  const auto corrupted = [&original]() {
    fault::arm(fault::parse_spec(spec_for(sites::kIoMetricsWrite, "corrupt")));
    std::string payload = original;
    EXPECT_TRUE(fault::corrupt_payload(sites::kIoMetricsWrite, payload));
    return payload;
  };
  const std::string a = corrupted();
  EXPECT_NE(a, original);
  EXPECT_EQ(a.size(), original.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diffs += a[i] != original[i];
  EXPECT_EQ(diffs, 1u);  // a single deterministic byte flip
  EXPECT_EQ(a, corrupted());
  EXPECT_EQ(fault::stats().corrupts, 1u);
}

TEST_F(FaultTest, RunWithRetryRetriesTransientsOnly) {
  fault::RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_us = 1;

  unsigned calls = 0;
  EXPECT_EQ(fault::run_with_retry(policy, [&] { ++calls; }), 1u);
  EXPECT_EQ(calls, 1u);

  calls = 0;
  std::vector<unsigned> retried;
  const unsigned attempts = fault::run_with_retry(
      policy,
      [&] {
        if (++calls < 3) throw fault::TransientError("flaky");
      },
      [&](unsigned attempt) { retried.push_back(attempt); });
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(retried, (std::vector<unsigned>{1, 2}));

  calls = 0;
  EXPECT_THROW(fault::run_with_retry(
                   policy, [&] { ++calls; throw fault::TransientError("x"); }),
               fault::TransientError);
  EXPECT_EQ(calls, 3u);  // initial attempt + max_retries

  calls = 0;
  EXPECT_THROW(
      fault::run_with_retry(policy, [&] { ++calls; throw Error("fatal"); }),
      Error);
  EXPECT_EQ(calls, 1u);  // non-transients propagate immediately
}

// ----------------------------------------------------------- artifact I/O

TEST_F(FaultTest, GuardedWriteSurvivesTransientAndCorruption) {
  const auto render = [](std::ostream& os) { os << "{\"v\":1}\n"; };
  std::ostringstream clean;
  EXPECT_EQ(obs::write_artifact_guarded(clean, sites::kIoMetricsWrite, render),
            1u);

  fault::RetryPolicy policy;
  policy.backoff_us = 1;

  // A transient with a one-fire budget fails the first attempt and lets the
  // retry commit; the payload that lands is the clean one.
  fault::arm(fault::parse_spec(
      spec_for(sites::kIoMetricsWrite, "transient", "count=1")));
  std::ostringstream retried;
  EXPECT_EQ(obs::write_artifact_guarded(retried, sites::kIoMetricsWrite,
                                        render, policy),
            2u);
  EXPECT_EQ(retried.str(), clean.str());

  // Corruption is detected before the sink sees a byte, classified as
  // transient, and retried clean.
  fault::arm(fault::parse_spec(
      spec_for(sites::kIoMetricsWrite, "corrupt", "count=1")));
  std::ostringstream healed;
  EXPECT_EQ(obs::write_artifact_guarded(healed, sites::kIoMetricsWrite, render,
                                        policy),
            2u);
  EXPECT_EQ(healed.str(), clean.str());
  EXPECT_EQ(fault::stats().corrupts, 1u);

  // Delay perturbs, never retries; a permanent throw propagates after the
  // budget outlasts the policy.
  fault::arm(fault::parse_spec(
      spec_for(sites::kIoTraceWrite, "delay", "delay_us=1")));
  std::ostringstream delayed;
  EXPECT_EQ(obs::write_artifact_guarded(delayed, sites::kIoTraceWrite, render,
                                        policy),
            1u);
  EXPECT_EQ(delayed.str(), clean.str());

  fault::arm(fault::parse_spec(spec_for(sites::kIoCheckWrite, "throw")));
  std::ostringstream failed;
  EXPECT_THROW(obs::write_artifact_guarded(failed, sites::kIoCheckWrite,
                                           render, policy),
               fault::FaultError);
  EXPECT_TRUE(failed.str().empty());
}

// ------------------------------------------------------------ fault matrix

TEST_F(FaultTest, MatrixEverySimSiteIsolatesTheTargetedJob) {
  const std::vector<Job> jobs = matrix_jobs();
  BatchOptions bopt;
  bopt.threads = 2;
  bopt.fail_fast = false;
  bopt.max_retries = 1;
  bopt.retry_backoff_us = 1;
  const std::vector<JobResult> base = bench().evaluate_batch(jobs, bopt);
  ASSERT_EQ(base.size(), jobs.size());
  for (const JobResult& r : base) ASSERT_TRUE(r.ok());

  const std::string_view matrix_sites[] = {
      sites::kSimPrepare, sites::kSimFinish, sites::kSolverAllocate};
  for (const std::string_view site : matrix_sites) {
    for (const std::string_view action : {"throw", "transient", "delay"}) {
      SCOPED_TRACE(std::string(site) + " / " + std::string(action));
      fault::arm(fault::parse_spec(
          spec_for(site, action, "arg=0,count=1,delay_us=1")));
      const std::vector<JobResult> got = bench().evaluate_batch(jobs, bopt);
      fault::disarm();
      ASSERT_EQ(got.size(), base.size());
      // Bystanders are bit-identical to the fault-free run in every cell.
      for (std::size_t i = 1; i < got.size(); ++i) {
        ASSERT_TRUE(got[i].ok());
        EXPECT_EQ(got[i].status, JobStatus::kOk);
        expect_outcome_eq(got[i].outcome, base[i].outcome, i);
      }
      if (action == std::string_view("throw")) {
        EXPECT_EQ(got[0].status, JobStatus::kFailed);
        EXPECT_EQ(got[0].error_kind, "fault");
        EXPECT_NE(got[0].message.find(site), std::string::npos);
        EXPECT_EQ(got[0].attempts, 1u);
      } else if (action == std::string_view("transient")) {
        EXPECT_EQ(got[0].status, JobStatus::kRetriedOk);
        EXPECT_EQ(got[0].attempts, 2u);
        expect_outcome_eq(got[0].outcome, base[0].outcome, 0);
      } else {
        EXPECT_EQ(got[0].status, JobStatus::kOk);
        expect_outcome_eq(got[0].outcome, base[0].outcome, 0);
      }
    }
  }
}

TEST_F(FaultTest, FailFastBatchRethrowsTheInjectedFault) {
  fault::arm(fault::parse_spec(
      spec_for(sites::kSolverAllocate, "throw", "arg=0")));
  BatchOptions fail_fast;
  fail_fast.threads = 2;
  EXPECT_THROW(bench().evaluate_batch(matrix_jobs(), fail_fast),
               fault::FaultError);
}

TEST_F(FaultTest, BatchMetricsCountFailuresRetriesAndInjections) {
  obs::MetricsRegistry reg;
  report::WorkbenchOptions wopt;
  wopt.metrics = &reg;
  const Workbench instrumented(adpcm(), wopt);
  BatchOptions bopt;
  bopt.threads = 2;
  bopt.fail_fast = false;
  bopt.max_retries = 1;
  bopt.retry_backoff_us = 1;

  fault::arm(fault::parse_spec(
      spec_for(sites::kSimPrepare, "throw", "arg=0,count=1") + ";" +
      spec_for(sites::kSimFinish, "transient", "arg=1,count=1")));
  const std::vector<JobResult> got =
      instrumented.evaluate_batch(matrix_jobs(), bopt);
  EXPECT_EQ(got[0].status, JobStatus::kFailed);
  EXPECT_EQ(got[1].status, JobStatus::kRetriedOk);
  EXPECT_EQ(got[2].status, JobStatus::kOk);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("runner.jobs_failed"), 1u);
  EXPECT_EQ(snap.counters.at("runner.jobs_retried"), 1u);
  EXPECT_EQ(snap.counters.at("fault.injected"), 2u);
  // The failed job's shard never merges: a batch with a dead job reports
  // the partial-failure check rule instead of silently thin counters.
  EXPECT_GE(snap.counters.at("check.diagnostics"), 1u);
}

TEST_F(FaultTest, TraceHookEmitsInjectionAndRetryInstants) {
  obs::Tracer tracer;
  obs::Tracer::set_current(&tracer);
  obs::install_fault_trace_hook();
  fault::arm(fault::parse_spec(
      spec_for(sites::kSimFinish, "transient", "arg=0,count=1")));
  BatchOptions bopt;
  bopt.threads = 1;
  bopt.fail_fast = false;
  bopt.max_retries = 1;
  bopt.retry_backoff_us = 1;
  const std::vector<JobResult> got =
      bench().evaluate_batch(matrix_jobs(), bopt);
  obs::Tracer::set_current(nullptr);
  EXPECT_EQ(got[0].status, JobStatus::kRetriedOk);

  std::uint64_t injected = 0, retries = 0;
  for (const obs::TraceEvent& e : tracer.drain().events) {
    if (e.kind != obs::TraceEventKind::kInstant) continue;
    if (e.name == obs::trace_names::kFaultInjected) ++injected;
    if (e.name == obs::trace_names::kRunnerRetry) ++retries;
  }
  EXPECT_EQ(injected, 1u);
  EXPECT_EQ(retries, 1u);
}

// ------------------------------------------------------------ sweep engine

/// Two stack-eligible LRU families. The stream key ignores cache size and
/// associativity (one stack pass serves the whole sets x assoc family), so
/// the second family needs a different line size to form its own group:
/// jobs 0-3 (line 16) share one fetch stream — the faulted group, with
/// rep_job = 0 — and jobs 4-5 (line 32) the other.
std::vector<Job> sweep_jobs() {
  std::vector<Job> jobs;
  for (const Bytes size : {128u, 256u, 512u, 1024u}) {
    jobs.push_back(Job::cache_only_job(cache_cfg(size, 1)));
  }
  for (const Bytes size : {256u, 1024u}) {
    cachesim::CacheConfig wide = cache_cfg(size, 2);
    wide.line_size = 32;
    jobs.push_back(Job::cache_only_job(wide));
  }
  return jobs;
}

TEST_F(FaultTest, SweepDegradesTheFaultedGroupAndKeepsResults) {
  const std::vector<Job> jobs = sweep_jobs();
  BatchOptions bopt;
  bopt.threads = 2;
  bopt.fail_fast = false;
  bopt.retry_backoff_us = 1;

  // Fault-free baseline on the uninstrumented bench: metrics never change
  // outcomes, so it doubles as the reference for the instrumented run.
  const std::vector<JobResult> base =
      sim::SweepPlanner(bench()).run_jobs(jobs, bopt);
  for (const JobResult& r : base) ASSERT_TRUE(r.ok());

  obs::MetricsRegistry reg;
  report::WorkbenchOptions wopt;
  wopt.metrics = &reg;
  const Workbench instrumented(adpcm(), wopt);
  const sim::SweepPlanner planner(instrumented);

  // A permanent fault in group 0's shared stack pass degrades that group to
  // per-member direct finishes — same outcomes, one degraded-group mark.
  fault::arm(fault::parse_spec(
      spec_for(sites::kSweepStackPass, "throw", "arg=0")));
  const std::vector<JobResult> got = planner.run_jobs(jobs, bopt);
  fault::disarm();
  ASSERT_EQ(got.size(), base.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << "job " << i;
    expect_outcome_eq(got[i].outcome, base[i].outcome, i);
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("sweep.degraded_groups"), 1u);
  EXPECT_EQ(snap.counters.at("sweep.stack_passes"), 1u);  // group 1 still did
  EXPECT_EQ(snap.counters.at("fault.injected"), 1u);
  EXPECT_EQ(snap.counters.count("runner.jobs_failed"), 0u);
}

TEST_F(FaultTest, SweepFailFastStillThrowsInjectedFaults) {
  const sim::SweepPlanner planner(bench());
  fault::arm(fault::parse_spec(
      spec_for(sites::kSweepStackPass, "throw", "arg=0")));
  EXPECT_THROW(planner.run(sweep_jobs(), 2), fault::FaultError);
}

TEST_F(FaultTest, SweepUnderFaultIsThreadCountInvariant) {
  const sim::SweepPlanner planner(bench());
  const std::vector<Job> jobs = sweep_jobs();
  BatchOptions bopt;
  bopt.fail_fast = false;
  bopt.retry_backoff_us = 1;

  const auto run_at = [&](unsigned threads) {
    fault::arm(fault::parse_spec(
        spec_for(sites::kSweepStackPass, "throw", "arg=0")));
    bopt.threads = threads;
    const std::vector<JobResult> r = planner.run_jobs(jobs, bopt);
    fault::disarm();
    return r;
  };
  const std::vector<JobResult> one = run_at(1);
  for (const unsigned threads : {2u, 8u}) {
    const std::vector<JobResult> many = run_at(threads);
    ASSERT_EQ(many.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(many[i].status, one[i].status) << "job " << i;
      ASSERT_TRUE(many[i].ok()) << "job " << i;
      expect_outcome_eq(many[i].outcome, one[i].outcome, i);
    }
  }
}

}  // namespace
}  // namespace casa

#include <gtest/gtest.h>

#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"

namespace casa::trace {
namespace {

using prog::FunctionScope;
using prog::Program;
using prog::ProgramBuilder;

Program loop_program(std::int64_t trips) {
  ProgramBuilder b("p");
  b.function("main", [trips](FunctionScope& f) {
    f.code(16, "pre");
    f.loop(trips, [](FunctionScope& l) { l.code(32, "body"); });
    f.code(16, "post");
  });
  return b.build();
}

TEST(Executor, LoopTripCountExact) {
  const Program p = loop_program(5);
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  // pre, header, body, latch, post
  EXPECT_EQ(r.profile.count(blocks[0]), 1u);  // pre
  EXPECT_EQ(r.profile.count(blocks[1]), 1u);  // header
  EXPECT_EQ(r.profile.count(blocks[2]), 5u);  // body
  EXPECT_EQ(r.profile.count(blocks[3]), 5u);  // latch
  EXPECT_EQ(r.profile.count(blocks[4]), 1u);  // post
}

TEST(Executor, ZeroTripLoopSkipsBody) {
  const Program p = loop_program(0);
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  EXPECT_EQ(r.profile.count(blocks[2]), 0u);
  EXPECT_EQ(r.profile.count(blocks[1]), 1u);  // header still runs
}

TEST(Executor, FetchCountMatchesBlockSizes) {
  const Program p = loop_program(5);
  const ExecutionResult r = Executor::run(p);
  // pre 4w + header 2w + 5*(body 8w + latch 2w) + post 4w = 60 words
  EXPECT_EQ(r.total_fetches, 4u + 2u + 5u * 10u + 4u);
  EXPECT_EQ(r.total_fetches, r.profile.total_fetches(p));
}

TEST(Executor, WalkMatchesProfile) {
  const Program p = loop_program(7);
  const ExecutionResult r = Executor::run(p);
  std::vector<std::uint64_t> counts(p.block_count(), 0);
  for (const BasicBlockId bb : r.walk.seq) ++counts[bb.index()];
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i],
              r.profile.count(BasicBlockId(static_cast<std::uint32_t>(i))));
  }
}

TEST(Executor, DeterministicAcrossRuns) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(100, [](FunctionScope& l) {
      l.if_then(0.5, [](FunctionScope& t) { t.code(8, "t"); });
      l.code(8, "x");
    });
  });
  const Program p = b.build();
  ExecutorOptions opt;
  opt.seed = 99;
  const ExecutionResult a = Executor::run(p, opt);
  const ExecutionResult bres = Executor::run(p, opt);
  EXPECT_EQ(a.walk.seq, bres.walk.seq);
}

TEST(Executor, SeedChangesBranchOutcomes) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(200, [](FunctionScope& l) {
      l.if_then(0.5, [](FunctionScope& t) { t.code(8, "t"); });
      l.code(8, "x");
    });
  });
  const Program p = b.build();
  ExecutorOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  EXPECT_NE(Executor::run(p, o1).walk.seq, Executor::run(p, o2).walk.seq);
}

TEST(Executor, BranchProbabilityRespected) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(10000, [](FunctionScope& l) {
      l.if_then(0.25, [](FunctionScope& t) { t.code(8, "taken"); });
      l.code(8, "always");
    });
  });
  const Program p = b.build();
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  // blocks: header, cond, taken, always, latch
  const double rate =
      static_cast<double>(r.profile.count(blocks[2])) / 10000.0;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(Executor, IfElseArmsPartition) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(5000, [](FunctionScope& l) {
      l.if_else(
          0.6, [](FunctionScope& t) { t.code(8, "t"); },
          [](FunctionScope& e) { e.code(8, "e"); });
    });
  });
  const Program p = b.build();
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  // header, cond, then, else, latch
  EXPECT_EQ(r.profile.count(blocks[2]) + r.profile.count(blocks[3]), 5000u);
}

TEST(Executor, VariableTripLoopWithinBounds) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(50, [](FunctionScope& outer) {
      outer.loop_between(2, 6, [](FunctionScope& l) { l.code(8, "x"); });
    });
  });
  const Program p = b.build();
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  // outer header, inner header, body, inner latch, outer latch
  const std::uint64_t body = r.profile.count(blocks[2]);
  EXPECT_GE(body, 50u * 2u);
  EXPECT_LE(body, 50u * 6u);
}

TEST(Executor, CallsInlineCalleeWalk) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(10, [](FunctionScope& l) { l.call("helper"); });
  });
  b.function("helper", [](FunctionScope& f) { f.code(16, "h"); });
  const Program p = b.build();
  const ExecutionResult r = Executor::run(p);
  const auto& helper_blocks = p.function(FunctionId(1)).blocks();
  EXPECT_EQ(r.profile.count(helper_blocks[0]), 10u);
}

TEST(Executor, SwitchWeightsRoughlyRespected) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(9000, [](FunctionScope& l) {
      l.switch_of({2.0, 1.0}, {[](FunctionScope& a) { a.code(8, "a0"); },
                               [](FunctionScope& a) { a.code(8, "a1"); }});
    });
  });
  const Program p = b.build();
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  // header, selector, arm0, arm1, latch
  const double frac =
      static_cast<double>(r.profile.count(blocks[2])) / 9000.0;
  EXPECT_NEAR(frac, 2.0 / 3.0, 0.03);
}

TEST(Executor, EdgeCountsConsistent) {
  const Program p = loop_program(5);
  const ExecutionResult r = Executor::run(p);
  const auto& blocks = p.function(p.entry()).blocks();
  // body -> latch traversed 5 times, latch -> body 4 times (last latch goes
  // to post).
  EXPECT_EQ(r.profile.edge_count(blocks[2], blocks[3]), 5u);
  EXPECT_EQ(r.profile.edge_count(blocks[3], blocks[2]), 4u);
  EXPECT_EQ(r.profile.edge_count(blocks[3], blocks[4]), 1u);
}

TEST(Executor, MaxBlocksGuard) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(1000000, [](FunctionScope& l) { l.code(8, "x"); });
  });
  const Program p = b.build();
  ExecutorOptions opt;
  opt.max_blocks = 1000;
  EXPECT_THROW(Executor::run(p, opt), PreconditionError);
}

TEST(Executor, RecordWalkOffStillProfiles) {
  const Program p = loop_program(5);
  ExecutorOptions opt;
  opt.record_walk = false;
  const ExecutionResult r = Executor::run(p, opt);
  EXPECT_TRUE(r.walk.seq.empty());
  EXPECT_GT(r.total_fetches, 0u);
}

}  // namespace
}  // namespace casa::trace

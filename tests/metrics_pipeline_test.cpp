// End-to-end telemetry: the workbench's per-stage spans, the pipeline
// counters mirroring simulation results, and the thread-count invariance
// of merged evaluate_batch counters.
#include <gtest/gtest.h>

#include <vector>

#include "casa/fault/fault.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/report/workbench.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/support/error.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::report {
namespace {

const prog::Program& adpcm() {
  static const prog::Program program = workloads::make_adpcm();
  return program;
}

Workbench instrumented_bench(obs::MetricsRegistry* reg) {
  WorkbenchOptions opt;
  opt.metrics = reg;
  return Workbench(adpcm(), opt);
}

TEST(PipelineMetrics, CasaRecordsAllFiveStages) {
  obs::MetricsRegistry reg;
  const Workbench wb = instrumented_bench(&reg);
  const Outcome out =
      wb.evaluate(Workbench::Job::casa_job(workloads::paper_cache_for("adpcm"), 256)).value();

  const obs::MetricsSnapshot snap = reg.snapshot();
  for (const char* phase :
       {"run_casa", "run_casa/trace_formation", "run_casa/layout",
        "run_casa/conflict_graph", "run_casa/allocation",
        "run_casa/simulation"}) {
    ASSERT_TRUE(snap.spans.count(phase) == 1) << phase;
    EXPECT_EQ(snap.spans.at(phase).count, 1u) << phase;
    EXPECT_GE(snap.spans.at(phase).sum, 0.0) << phase;
  }

  // Counters are not a parallel bookkeeping system: they must equal the
  // simulation counters the Outcome already reports.
  EXPECT_EQ(snap.counters.at("sim.fetches"), out.sim.counters.total_fetches);
  EXPECT_EQ(snap.counters.at("cache.accesses"),
            out.sim.counters.cache_accesses);
  EXPECT_EQ(snap.counters.at("cache.hits"), out.sim.counters.cache_hits);
  EXPECT_EQ(snap.counters.at("cache.misses"), out.sim.counters.cache_misses);
  EXPECT_EQ(snap.counters.at("cache.evictions"),
            out.sim.counters.cache_evictions);

  EXPECT_EQ(snap.counters.at("conflict.edges"), out.conflict_edges());
  EXPECT_EQ(snap.counters.at("solver.nodes"), out.alloc().solver_stats.nodes);
}

TEST(PipelineMetrics, EveryFlowRecordsItsRootSpan) {
  obs::MetricsRegistry reg;
  const Workbench wb = instrumented_bench(&reg);
  const auto cache = workloads::paper_cache_for("adpcm");
  wb.evaluate(Workbench::Job::casa_job(cache, 256)).value();
  wb.evaluate(Workbench::Job::steinke_job(cache, 256)).value();
  wb.evaluate(Workbench::Job::loopcache_job(cache, 256)).value();
  wb.evaluate(Workbench::Job::cache_only_job(cache)).value();

  const obs::MetricsSnapshot snap = reg.snapshot();
  for (const char* flow :
       {"run_casa", "run_steinke", "run_loopcache", "run_cache_only"}) {
    EXPECT_TRUE(snap.spans.count(flow) == 1) << flow;
  }
  // Cache-oblivious flows must not have invented a conflict graph.
  EXPECT_EQ(snap.spans.count("run_steinke/conflict_graph"), 0u);
  EXPECT_EQ(snap.spans.count("run_cache_only/conflict_graph"), 0u);
}

TEST(PipelineMetrics, ConflictEdgesGatedToCasaFlow) {
  const Workbench wb = instrumented_bench(nullptr);
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome casa_run = wb.evaluate(Workbench::Job::casa_job(cache, 256)).value();
  EXPECT_EQ(casa_run.flow(), FlowKind::kCasa);
  EXPECT_NO_THROW(casa_run.conflict_edges());
  const Outcome steinke = wb.evaluate(Workbench::Job::steinke_job(cache, 256)).value();
  const Outcome lc = wb.evaluate(Workbench::Job::loopcache_job(cache, 256)).value();
  const Outcome base = wb.evaluate(Workbench::Job::cache_only_job(cache)).value();
  EXPECT_THROW(steinke.conflict_edges(), FlowError);
  EXPECT_THROW(lc.conflict_edges(), FlowError);
  EXPECT_THROW(base.conflict_edges(), FlowError);
}

std::vector<Workbench::Job> sweep_jobs() {
  const auto cache = workloads::paper_cache_for("adpcm");
  std::vector<Workbench::Job> jobs;
  for (const Bytes spm : {128u, 256u, 512u}) {
    jobs.push_back(Workbench::Job::casa_job(cache, spm));
    jobs.push_back(Workbench::Job::steinke_job(cache, spm));
  }
  jobs.push_back(Workbench::Job::loopcache_job(cache, 256));
  jobs.push_back(Workbench::Job::cache_only_job(cache));
  return jobs;
}

obs::MetricsSnapshot sweep_with_threads(unsigned threads) {
  obs::MetricsRegistry reg;
  const Workbench wb = instrumented_bench(&reg);
  BatchOptions bopt;
  bopt.threads = threads;
  wb.evaluate_batch(sweep_jobs(), bopt);
  return reg.snapshot();
}

TEST(PipelineMetrics, MergedCountersAreThreadCountInvariant) {
  const obs::MetricsSnapshot serial = sweep_with_threads(1);
  const obs::MetricsSnapshot parallel = sweep_with_threads(4);

  // The acceptance bar for the whole telemetry design: identical counter
  // values — not approximately, identical — on 1 thread and on 4. (Span
  // timings are wall-clock and may of course differ.)
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_GT(serial.counters.at("runner.jobs"), 0u);
}

TEST(PipelineMetrics, ShardsExposePerTaskBreakdown) {
  obs::MetricsRegistry reg;
  const Workbench wb = instrumented_bench(&reg);
  const std::vector<Workbench::Job> jobs = sweep_jobs();
  sim::MetricsShards shards(jobs.size());
  BatchOptions bopt;
  bopt.threads = 2;
  const std::vector<JobResult> outcomes = wb.evaluate_batch(jobs, bopt, &shards);
  ASSERT_EQ(outcomes.size(), jobs.size());

  // Each job's fetch counter sits in its own shard and matches its outcome.
  const std::vector<obs::MetricsSnapshot> tasks = shards.snapshots();
  ASSERT_EQ(tasks.size(), jobs.size());
  std::uint64_t fetch_sum = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(tasks[i].counters.count("sim.fetches")) << "job " << i;
    EXPECT_EQ(tasks[i].counters.at("sim.fetches"),
              outcomes[i].outcome.sim.counters.total_fetches)
        << "job " << i;
    fetch_sum += tasks[i].counters.at("sim.fetches");
  }
  EXPECT_EQ(shards.merged().counters.at("sim.fetches"), fetch_sum);
  EXPECT_EQ(reg.snapshot().counters.at("sim.fetches"), fetch_sum);
}

TEST(PipelineMetrics, ShardSizeMismatchIsRejected) {
  const Workbench wb = instrumented_bench(nullptr);
  sim::MetricsShards wrong(1);
  EXPECT_THROW(wb.evaluate_batch(sweep_jobs(), {}, &wrong), PreconditionError);
}

TEST(PipelineMetrics, FailedJobsLeaveNoPartialShardCounts) {
  obs::MetricsRegistry reg;
  const Workbench wb = instrumented_bench(&reg);
  const std::vector<Workbench::Job> jobs = sweep_jobs();

  // Kill job 0 partway through its flow (the finish stage runs after the
  // prepare stages have already recorded counters into the attempt).
  fault::arm(fault::parse_spec("site=fault.sim.finish,action=throw,arg=0"));
  BatchOptions bopt;
  bopt.threads = 2;
  bopt.fail_fast = false;
  sim::MetricsShards shards(jobs.size());
  const std::vector<JobResult> results =
      wb.evaluate_batch(jobs, bopt, &shards);
  fault::disarm();

  ASSERT_EQ(results.size(), jobs.size());
  EXPECT_EQ(results[0].status, JobStatus::kFailed);

  // Merge-on-success: the dead job's shard is empty — not a partial record
  // of the stages that ran before the failure — and the merged view equals
  // exactly the sum of the surviving shards.
  const std::vector<obs::MetricsSnapshot> tasks = shards.snapshots();
  EXPECT_TRUE(tasks[0].counters.empty());
  EXPECT_TRUE(tasks[0].spans.empty());
  std::uint64_t fetch_sum = 0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "job " << i;
    EXPECT_EQ(tasks[i].counters.at("sim.fetches"),
              results[i].outcome.sim.counters.total_fetches)
        << "job " << i;
    fetch_sum += tasks[i].counters.at("sim.fetches");
  }
  EXPECT_EQ(shards.merged().counters.at("sim.fetches"), fetch_sum);
  EXPECT_EQ(reg.snapshot().counters.at("runner.jobs_failed"), 1u);
}

}  // namespace
}  // namespace casa::report

// Telemetry foundations: registry thread-safety, null-sink handles,
// deterministic fake-clock spans, snapshot merging, and the JSON artifact
// round-trip through io::serialize.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "casa/io/serialize.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/obs/span.hpp"
#include "casa/support/error.hpp"
#include "casa/support/thread_pool.hpp"

namespace casa::obs {
namespace {

TEST(Counter, NullHandleIsInert) {
  const Counter null;
  EXPECT_FALSE(null.attached());
  null.add();      // must not crash
  null.add(1000);  // and must not record anywhere
}

TEST(Counter, HandleRecordsIntoRegistry) {
  MetricsRegistry reg;
  const Counter c = reg.counter("x");
  EXPECT_TRUE(c.attached());
  c.add();
  c.add(41);
  EXPECT_EQ(reg.snapshot().counters.at("x"), 42u);
}

TEST(Counter, SameNameResolvesToSameCell) {
  MetricsRegistry reg;
  reg.counter("x").add(1);
  reg.counter("x").add(2);
  reg.add("x", 3);
  EXPECT_EQ(reg.snapshot().counters.at("x"), 6u);
}

TEST(Counter, NullSafeLookupHelper) {
  EXPECT_FALSE(counter_or_null(nullptr, "x").attached());
  MetricsRegistry reg;
  EXPECT_TRUE(counter_or_null(&reg, "x").attached());
}

TEST(MetricsRegistry, ConcurrentIncrementsSumExactly) {
  // The registry's core guarantee: counts survive contention losslessly.
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerTask = 10'000;
  MetricsRegistry reg;
  const Counter c = reg.counter("contended");

  support::ThreadPool pool(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.submit([&reg, c] {
      // Half via the shared handle, half via name lookup — both paths must
      // land on the same cell.
      for (std::uint64_t i = 0; i < kPerTask; ++i) c.add();
      reg.add("contended", kPerTask);
    });
  }
  pool.wait();

  EXPECT_EQ(reg.snapshot().counters.at("contended"),
            2 * kThreads * kPerTask);
}

TEST(MetricsRegistry, GaugesLastWriteWins) {
  MetricsRegistry reg;
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", -2.5);
  EXPECT_EQ(reg.snapshot().gauges.at("g"), -2.5);
}

TEST(DistSummary, ObserveTracksCountSumMinMax) {
  MetricsRegistry reg;
  reg.observe("d", 3.0);
  reg.observe("d", -1.0);
  reg.observe("d", 2.0);
  const DistSummary d = reg.snapshot().distributions.at("d");
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.sum, 4.0);
  EXPECT_EQ(d.min, -1.0);
  EXPECT_EQ(d.max, 3.0);
}

TEST(DistSummary, MergeWidensAndSums) {
  DistSummary a;
  a.observe(1.0);
  a.observe(5.0);
  DistSummary b;
  b.observe(-2.0);

  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 4.0);
  EXPECT_EQ(a.min, -2.0);
  EXPECT_EQ(a.max, 5.0);

  DistSummary empty;
  a.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(a.count, 3u);
  empty.merge(a);  // merging into nothing copies
  EXPECT_EQ(empty.count, 3u);
  EXPECT_EQ(empty.min, -2.0);
}

TEST(Span, NullRegistryIsFullyInert) {
  FakeClock clock;
  const Span s(nullptr, "phase", &clock);
  EXPECT_TRUE(s.path().empty());
}

TEST(Span, FakeClockDurationsAreExact) {
  MetricsRegistry reg;
  FakeClock clock;
  {
    const Span s(&reg, "phase", &clock);
    clock.advance_seconds(1.25);
  }
  const DistSummary d = reg.snapshot().spans.at("phase");
  EXPECT_EQ(d.count, 1u);
  EXPECT_DOUBLE_EQ(d.sum, 1.25);
}

TEST(Span, NestingBuildsSlashJoinedPaths) {
  MetricsRegistry reg;
  FakeClock clock;
  {
    const Span outer(&reg, "run_casa", &clock);
    clock.advance_seconds(1.0);
    {
      const Span inner(&reg, "allocation", &clock);
      EXPECT_EQ(inner.path(), "run_casa/allocation");
      clock.advance_seconds(2.0);
    }
    {
      const Span inner(&reg, "simulation", &clock);
      clock.advance_seconds(4.0);
    }
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.spans.at("run_casa").sum, 7.0);
  EXPECT_DOUBLE_EQ(snap.spans.at("run_casa/allocation").sum, 2.0);
  EXPECT_DOUBLE_EQ(snap.spans.at("run_casa/simulation").sum, 4.0);
}

TEST(Span, SiblingScopesAggregateUnderOnePath) {
  MetricsRegistry reg;
  FakeClock clock;
  for (int i = 0; i < 3; ++i) {
    const Span s(&reg, "phase", &clock);
    clock.advance_seconds(1.0);
  }
  const DistSummary d = reg.snapshot().spans.at("phase");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 3.0);
}

TEST(Span, RealClockMeasuresSomethingNonNegative) {
  MetricsRegistry reg;
  { const Span s(&reg, "real"); }
  const DistSummary d = reg.snapshot().spans.at("real");
  EXPECT_EQ(d.count, 1u);
  EXPECT_GE(d.sum, 0.0);
}

TEST(MetricsSnapshot, MergeSumsCountersAndKeepsDisjointKeys) {
  MetricsRegistry a;
  a.add("shared", 10);
  a.add("only_a", 1);
  a.set_gauge("g", 1.0);
  MetricsRegistry b;
  b.add("shared", 32);
  b.add("only_b", 2);
  b.set_gauge("g", 2.0);

  MetricsRegistry total;
  total.merge_from(a.snapshot());
  total.merge_from(b.snapshot());
  const MetricsSnapshot snap = total.snapshot();
  EXPECT_EQ(snap.counters.at("shared"), 42u);
  EXPECT_EQ(snap.counters.at("only_a"), 1u);
  EXPECT_EQ(snap.counters.at("only_b"), 2u);
  EXPECT_EQ(snap.gauges.at("g"), 2.0);  // last write wins
}

MetricsSnapshot populated_snapshot() {
  MetricsRegistry reg;
  reg.set_config("workload", "mpeg");
  reg.set_config("notes", "quotes \" and \\ and\nnewlines\tsurvive");
  reg.add("cache.hits", 123456789);
  reg.add("solver.nodes", 1);
  reg.set_gauge("runner.threads", 4.0);
  reg.set_gauge("awkward", 0.1);  // not exactly representable
  reg.observe("job.seconds", 0.25);
  reg.observe("job.seconds", 1.0 / 3.0);
  FakeClock clock;
  {
    const Span outer(&reg, "run_casa", &clock);
    const Span inner(&reg, "allocation", &clock);
    clock.advance_ns(123456789);
  }
  return reg.snapshot();
}

void expect_snapshots_equal(const MetricsSnapshot& got,
                            const MetricsSnapshot& want) {
  EXPECT_EQ(got.config, want.config);
  EXPECT_EQ(got.counters, want.counters);
  EXPECT_EQ(got.gauges, want.gauges);
  ASSERT_EQ(got.distributions.size(), want.distributions.size());
  for (const auto& [k, d] : want.distributions) {
    ASSERT_TRUE(got.distributions.count(k)) << k;
    const DistSummary& g = got.distributions.at(k);
    EXPECT_EQ(g.count, d.count) << k;
    EXPECT_EQ(g.sum, d.sum) << k;
    EXPECT_EQ(g.min, d.min) << k;
    EXPECT_EQ(g.max, d.max) << k;
  }
  ASSERT_EQ(got.spans.size(), want.spans.size());
  for (const auto& [k, d] : want.spans) {
    ASSERT_TRUE(got.spans.count(k)) << k;
    EXPECT_EQ(got.spans.at(k).count, d.count) << k;
    EXPECT_EQ(got.spans.at(k).sum, d.sum) << k;
  }
}

TEST(Artifact, JsonRoundTripsThroughIoSerialize) {
  const MetricsSnapshot snap = populated_snapshot();

  std::stringstream ss;
  io::write_metrics_json(ss, snap);
  const MetricsSnapshot back = io::read_metrics_json(ss);

  expect_snapshots_equal(back, snap);
}

TEST(Artifact, JsonIsByteStableAcrossWrites) {
  const MetricsSnapshot snap = populated_snapshot();
  std::ostringstream a, b;
  io::write_metrics_json(a, snap);
  io::write_metrics_json(b, snap);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Artifact, TasksArrayExportsPerTaskSnapshots) {
  MetricsRegistry t0, t1;
  t0.add("cache.hits", 7);
  t1.add("cache.hits", 35);
  const std::vector<MetricsSnapshot> tasks = {t0.snapshot(), t1.snapshot()};

  MetricsRegistry merged;
  for (const MetricsSnapshot& t : tasks) merged.merge_from(t);

  ArtifactOptions opt;
  opt.tasks = &tasks;
  std::ostringstream os;
  write_artifact_json(os, merged.snapshot(), opt);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"tasks\": ["), std::string::npos);
  EXPECT_NE(text.find("\"cache.hits\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"cache.hits\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"cache.hits\": 35"), std::string::npos);
}

TEST(Artifact, ReaderRejectsWrongSchema) {
  std::istringstream is(R"({"schema": "something-else v9"})");
  EXPECT_THROW(io::read_metrics_json(is), PreconditionError);
}

TEST(Artifact, ReaderRejectsMalformedJson) {
  std::istringstream is("{\"schema\": \"casa-metrics v1\", ");
  EXPECT_THROW(io::read_metrics_json(is), PreconditionError);
}

TEST(Artifact, CsvListsEveryMetricKind) {
  const MetricsSnapshot snap = populated_snapshot();
  std::ostringstream os;
  write_artifact_csv(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("kind,name,value"), std::string::npos);
  EXPECT_NE(text.find("counter,cache.hits,123456789"), std::string::npos);
  EXPECT_NE(text.find("config,workload,mpeg"), std::string::npos);
  EXPECT_NE(text.find("phase,run_casa/allocation.count,1"),
            std::string::npos);
  EXPECT_NE(text.find("gauge,runner.threads,4"), std::string::npos);
  EXPECT_NE(text.find("distribution,job.seconds.count,2"),
            std::string::npos);
}

}  // namespace
}  // namespace casa::obs

// Telemetry foundations: registry thread-safety, null-sink handles,
// deterministic fake-clock spans, snapshot merging, and the JSON artifact
// round-trip through io::serialize.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "casa/io/serialize.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/obs/span.hpp"
#include "casa/obs/trace_analysis.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/error.hpp"
#include "casa/support/thread_pool.hpp"

namespace casa::obs {
namespace {

TEST(Counter, NullHandleIsInert) {
  const Counter null;
  EXPECT_FALSE(null.attached());
  null.add();      // must not crash
  null.add(1000);  // and must not record anywhere
}

TEST(Counter, HandleRecordsIntoRegistry) {
  MetricsRegistry reg;
  const Counter c = reg.counter("x");
  EXPECT_TRUE(c.attached());
  c.add();
  c.add(41);
  EXPECT_EQ(reg.snapshot().counters.at("x"), 42u);
}

TEST(Counter, SameNameResolvesToSameCell) {
  MetricsRegistry reg;
  reg.counter("x").add(1);
  reg.counter("x").add(2);
  reg.add("x", 3);
  EXPECT_EQ(reg.snapshot().counters.at("x"), 6u);
}

TEST(Counter, NullSafeLookupHelper) {
  EXPECT_FALSE(counter_or_null(nullptr, "x").attached());
  MetricsRegistry reg;
  EXPECT_TRUE(counter_or_null(&reg, "x").attached());
}

TEST(MetricsRegistry, ConcurrentIncrementsSumExactly) {
  // The registry's core guarantee: counts survive contention losslessly.
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerTask = 10'000;
  MetricsRegistry reg;
  const Counter c = reg.counter("contended");

  support::ThreadPool pool(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.submit([&reg, c] {
      // Half via the shared handle, half via name lookup — both paths must
      // land on the same cell.
      for (std::uint64_t i = 0; i < kPerTask; ++i) c.add();
      reg.add("contended", kPerTask);
    });
  }
  pool.wait();

  EXPECT_EQ(reg.snapshot().counters.at("contended"),
            2 * kThreads * kPerTask);
}

TEST(MetricsRegistry, GaugesLastWriteWins) {
  MetricsRegistry reg;
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", -2.5);
  EXPECT_EQ(reg.snapshot().gauges.at("g"), -2.5);
}

TEST(DistSummary, ObserveTracksCountSumMinMax) {
  MetricsRegistry reg;
  reg.observe("d", 3.0);
  reg.observe("d", -1.0);
  reg.observe("d", 2.0);
  const DistSummary d = reg.snapshot().distributions.at("d");
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.sum, 4.0);
  EXPECT_EQ(d.min, -1.0);
  EXPECT_EQ(d.max, 3.0);
}

TEST(DistSummary, MergeWidensAndSums) {
  DistSummary a;
  a.observe(1.0);
  a.observe(5.0);
  DistSummary b;
  b.observe(-2.0);

  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 4.0);
  EXPECT_EQ(a.min, -2.0);
  EXPECT_EQ(a.max, 5.0);

  DistSummary empty;
  a.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(a.count, 3u);
  empty.merge(a);  // merging into nothing copies
  EXPECT_EQ(empty.count, 3u);
  EXPECT_EQ(empty.min, -2.0);
}

TEST(Span, NullRegistryIsFullyInert) {
  FakeClock clock;
  const Span s(nullptr, "phase", &clock);
  EXPECT_TRUE(s.path().empty());
}

TEST(Span, FakeClockDurationsAreExact) {
  MetricsRegistry reg;
  FakeClock clock;
  {
    const Span s(&reg, "phase", &clock);
    clock.advance_seconds(1.25);
  }
  const DistSummary d = reg.snapshot().spans.at("phase");
  EXPECT_EQ(d.count, 1u);
  EXPECT_DOUBLE_EQ(d.sum, 1.25);
}

TEST(Span, NestingBuildsSlashJoinedPaths) {
  MetricsRegistry reg;
  FakeClock clock;
  {
    const Span outer(&reg, "run_casa", &clock);
    clock.advance_seconds(1.0);
    {
      const Span inner(&reg, "allocation", &clock);
      EXPECT_EQ(inner.path(), "run_casa/allocation");
      clock.advance_seconds(2.0);
    }
    {
      const Span inner(&reg, "simulation", &clock);
      clock.advance_seconds(4.0);
    }
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.spans.at("run_casa").sum, 7.0);
  EXPECT_DOUBLE_EQ(snap.spans.at("run_casa/allocation").sum, 2.0);
  EXPECT_DOUBLE_EQ(snap.spans.at("run_casa/simulation").sum, 4.0);
}

TEST(Span, SiblingScopesAggregateUnderOnePath) {
  MetricsRegistry reg;
  FakeClock clock;
  for (int i = 0; i < 3; ++i) {
    const Span s(&reg, "phase", &clock);
    clock.advance_seconds(1.0);
  }
  const DistSummary d = reg.snapshot().spans.at("phase");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 3.0);
}

TEST(Span, RealClockMeasuresSomethingNonNegative) {
  MetricsRegistry reg;
  { const Span s(&reg, "real"); }
  const DistSummary d = reg.snapshot().spans.at("real");
  EXPECT_EQ(d.count, 1u);
  EXPECT_GE(d.sum, 0.0);
}

TEST(MetricsSnapshot, MergeSumsCountersAndKeepsDisjointKeys) {
  MetricsRegistry a;
  a.add("shared", 10);
  a.add("only_a", 1);
  a.set_gauge("g", 1.0);
  MetricsRegistry b;
  b.add("shared", 32);
  b.add("only_b", 2);
  b.set_gauge("g", 2.0);

  MetricsRegistry total;
  total.merge_from(a.snapshot());
  total.merge_from(b.snapshot());
  const MetricsSnapshot snap = total.snapshot();
  EXPECT_EQ(snap.counters.at("shared"), 42u);
  EXPECT_EQ(snap.counters.at("only_a"), 1u);
  EXPECT_EQ(snap.counters.at("only_b"), 2u);
  EXPECT_EQ(snap.gauges.at("g"), 2.0);  // last write wins
}

MetricsSnapshot populated_snapshot() {
  MetricsRegistry reg;
  reg.set_config("workload", "mpeg");
  reg.set_config("notes", "quotes \" and \\ and\nnewlines\tsurvive");
  reg.add("cache.hits", 123456789);
  reg.add("solver.nodes", 1);
  reg.set_gauge("runner.threads", 4.0);
  reg.set_gauge("awkward", 0.1);  // not exactly representable
  reg.observe("job.seconds", 0.25);
  reg.observe("job.seconds", 1.0 / 3.0);
  FakeClock clock;
  {
    const Span outer(&reg, "run_casa", &clock);
    const Span inner(&reg, "allocation", &clock);
    clock.advance_ns(123456789);
  }
  return reg.snapshot();
}

void expect_snapshots_equal(const MetricsSnapshot& got,
                            const MetricsSnapshot& want) {
  EXPECT_EQ(got.config, want.config);
  EXPECT_EQ(got.counters, want.counters);
  EXPECT_EQ(got.gauges, want.gauges);
  ASSERT_EQ(got.distributions.size(), want.distributions.size());
  for (const auto& [k, d] : want.distributions) {
    ASSERT_TRUE(got.distributions.count(k)) << k;
    const DistSummary& g = got.distributions.at(k);
    EXPECT_EQ(g.count, d.count) << k;
    EXPECT_EQ(g.sum, d.sum) << k;
    EXPECT_EQ(g.min, d.min) << k;
    EXPECT_EQ(g.max, d.max) << k;
  }
  ASSERT_EQ(got.spans.size(), want.spans.size());
  for (const auto& [k, d] : want.spans) {
    ASSERT_TRUE(got.spans.count(k)) << k;
    EXPECT_EQ(got.spans.at(k).count, d.count) << k;
    EXPECT_EQ(got.spans.at(k).sum, d.sum) << k;
  }
}

TEST(Artifact, JsonRoundTripsThroughIoSerialize) {
  const MetricsSnapshot snap = populated_snapshot();

  std::stringstream ss;
  io::write_metrics_json(ss, snap);
  const MetricsSnapshot back = io::read_metrics_json(ss);

  expect_snapshots_equal(back, snap);
}

TEST(Artifact, JsonIsByteStableAcrossWrites) {
  const MetricsSnapshot snap = populated_snapshot();
  std::ostringstream a, b;
  io::write_metrics_json(a, snap);
  io::write_metrics_json(b, snap);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Artifact, TasksArrayExportsPerTaskSnapshots) {
  MetricsRegistry t0, t1;
  t0.add("cache.hits", 7);
  t1.add("cache.hits", 35);
  const std::vector<MetricsSnapshot> tasks = {t0.snapshot(), t1.snapshot()};

  MetricsRegistry merged;
  for (const MetricsSnapshot& t : tasks) merged.merge_from(t);

  ArtifactOptions opt;
  opt.tasks = &tasks;
  std::ostringstream os;
  write_artifact_json(os, merged.snapshot(), opt);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"tasks\": ["), std::string::npos);
  EXPECT_NE(text.find("\"cache.hits\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"cache.hits\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"cache.hits\": 35"), std::string::npos);
}

TEST(Artifact, ReaderRejectsWrongSchema) {
  std::istringstream is(R"({"schema": "something-else v9"})");
  EXPECT_THROW(io::read_metrics_json(is), PreconditionError);
}

TEST(Artifact, ReaderRejectsMalformedJson) {
  std::istringstream is("{\"schema\": \"casa-metrics v1\", ");
  EXPECT_THROW(io::read_metrics_json(is), PreconditionError);
}

TEST(Artifact, CsvListsEveryMetricKind) {
  const MetricsSnapshot snap = populated_snapshot();
  std::ostringstream os;
  write_artifact_csv(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("kind,name,value"), std::string::npos);
  EXPECT_NE(text.find("counter,cache.hits,123456789"), std::string::npos);
  EXPECT_NE(text.find("config,workload,mpeg"), std::string::npos);
  EXPECT_NE(text.find("phase,run_casa/allocation.count,1"),
            std::string::npos);
  EXPECT_NE(text.find("gauge,runner.threads,4"), std::string::npos);
  EXPECT_NE(text.find("distribution,job.seconds.count,2"),
            std::string::npos);
}

TEST(Artifact, CsvLeadsWithRunProvenanceRows) {
  std::ostringstream os;
  ArtifactOptions opt;
  opt.tool = "unit_test";
  write_artifact_csv(os, populated_snapshot(), opt);
  const std::string text = os.str();
  // The run.* block sits right after the header, before any metric rows,
  // so a spreadsheet shows provenance first.
  const std::size_t header = text.find("kind,name,value");
  ASSERT_NE(header, std::string::npos);
  const std::size_t tool = text.find("run,run.tool,unit_test");
  ASSERT_NE(tool, std::string::npos);
  EXPECT_LT(header, tool);
  EXPECT_NE(text.find("run,run.git,"), std::string::npos);
  EXPECT_NE(text.find("run,run.build_type,"), std::string::npos);
  EXPECT_NE(text.find("run,run.compiler,"), std::string::npos);
  const std::size_t first_metric = text.find("\nconfig,");
  ASSERT_NE(first_metric, std::string::npos);
  EXPECT_LT(tool, first_metric);
}

TEST(ArtifactSinks, DashMeansStdoutExactlyOnce) {
  const ArtifactSinkPlan plan = plan_artifact_sinks("-", /*stdout_flag=*/false);
  EXPECT_TRUE(plan.to_stdout);
  EXPECT_TRUE(plan.file.empty());
  EXPECT_TRUE(plan.note.empty());
}

TEST(ArtifactSinks, DashPlusStdoutFlagDedupesWithNote) {
  const ArtifactSinkPlan plan = plan_artifact_sinks("-", /*stdout_flag=*/true);
  EXPECT_TRUE(plan.to_stdout);
  EXPECT_TRUE(plan.file.empty());
  EXPECT_NE(plan.note.find("redundant"), std::string::npos);
}

TEST(ArtifactSinks, FilePlusStdoutKeepsBothAndSaysSo) {
  const ArtifactSinkPlan plan =
      plan_artifact_sinks("out.json", /*stdout_flag=*/true);
  EXPECT_TRUE(plan.to_stdout);
  EXPECT_EQ(plan.file, "out.json");
  EXPECT_NE(plan.note.find("out.json"), std::string::npos);
}

TEST(ArtifactSinks, FileOnlyAndStdoutOnlyAreQuiet) {
  const ArtifactSinkPlan file_only =
      plan_artifact_sinks("out.json", /*stdout_flag=*/false);
  EXPECT_FALSE(file_only.to_stdout);
  EXPECT_EQ(file_only.file, "out.json");
  EXPECT_TRUE(file_only.note.empty());

  const ArtifactSinkPlan stdout_only =
      plan_artifact_sinks("", /*stdout_flag=*/true);
  EXPECT_TRUE(stdout_only.to_stdout);
  EXPECT_TRUE(stdout_only.file.empty());
  EXPECT_TRUE(stdout_only.note.empty());
}

// ---------------------------------------------------------------------------
// Event tracing.

// Restores the global tracer slot even when a test fails mid-way.
struct CurrentTracerGuard {
  ~CurrentTracerGuard() { Tracer::set_current(nullptr); }
};

TEST(Tracer, RecordsAndDrainsInTimestampOrder) {
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer tracer(opt);

  tracer.begin("run");
  clock.advance_ns(100);
  tracer.instant("checkpoint", 7.0);
  clock.advance_ns(50);
  tracer.counter("nodes", 42.0);
  clock.advance_ns(25);
  tracer.end("run");

  const TraceData data = tracer.drain();
  EXPECT_EQ(data.dropped, 0u);
  ASSERT_EQ(data.events.size(), 4u);
  EXPECT_EQ(data.events[0].kind, TraceEventKind::kBegin);
  EXPECT_EQ(data.events[0].name, "run");
  EXPECT_EQ(data.events[0].ts_ns, 0u);  // rebased to the first event
  EXPECT_EQ(data.events[1].kind, TraceEventKind::kInstant);
  EXPECT_EQ(data.events[1].ts_ns, 100u);
  EXPECT_EQ(data.events[1].value, 7.0);
  EXPECT_EQ(data.events[2].kind, TraceEventKind::kCounter);
  EXPECT_EQ(data.events[2].value, 42.0);
  EXPECT_EQ(data.events[3].kind, TraceEventKind::kEnd);
  EXPECT_EQ(data.events[3].ts_ns, 175u);
  ASSERT_EQ(data.tracks.size(), 1u);
  EXPECT_EQ(data.tracks[0].tid, 0u);
  EXPECT_EQ(data.tracks[0].label, "main");
  EXPECT_EQ(data.tracks[0].worker_index, -1);
}

TEST(Tracer, TraceSpanEmitsBalancedBeginEnd) {
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer tracer(opt);
  {
    const TraceSpan outer(&tracer, "outer");
    clock.advance_ns(10);
    const TraceSpan inner(&tracer, "inner", "sim");
    clock.advance_ns(20);
  }
  const TraceData data = tracer.drain();
  ASSERT_EQ(data.events.size(), 4u);
  EXPECT_EQ(data.events[0].name, "outer");
  EXPECT_EQ(data.events[1].name, "inner");
  EXPECT_EQ(data.events[1].cat, "sim");
  EXPECT_EQ(data.events[2].name, "inner");  // inner closes first
  EXPECT_EQ(data.events[2].kind, TraceEventKind::kEnd);
  EXPECT_EQ(data.events[3].name, "outer");
}

TEST(Tracer, NullTraceSpanIsInert) {
  const TraceSpan span(nullptr, "nothing");  // must not crash or record
  EXPECT_EQ(Tracer::current(), nullptr);
}

TEST(Tracer, SpanDualEmitsWhenAttached) {
  const CurrentTracerGuard guard;
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer tracer(opt);
  Tracer::set_current(&tracer);
  EXPECT_EQ(Tracer::current(), &tracer);

  MetricsRegistry reg;
  {
    const Span both(&reg, "phase", &clock);
    clock.advance_seconds(0.001);
  }
  { const Span trace_only(nullptr, "orphan", &clock); }

  // The metrics side still aggregates...
  EXPECT_EQ(reg.snapshot().spans.at("phase").count, 1u);
  // ...and the tracer saw both spans, including the registry-less one.
  const TraceData data = tracer.drain();
  ASSERT_EQ(data.events.size(), 4u);
  EXPECT_EQ(data.events[0].name, "phase");
  EXPECT_EQ(data.events[0].kind, TraceEventKind::kBegin);
  EXPECT_EQ(data.events[1].name, "phase");
  EXPECT_EQ(data.events[1].ts_ns, 1'000'000u);
  EXPECT_EQ(data.events[2].name, "orphan");
}

TEST(Tracer, DropNewestCountsOverflow) {
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  opt.buffer_capacity = 4;
  Tracer tracer(opt);
  for (int i = 0; i < 10; ++i) tracer.instant("e", i);
  EXPECT_EQ(tracer.dropped(), 6u);
  const TraceData data = tracer.drain();
  EXPECT_EQ(data.dropped, 6u);
  ASSERT_EQ(data.events.size(), 4u);
  EXPECT_EQ(data.events[0].value, 0.0);  // oldest events survive
  EXPECT_EQ(data.events[3].value, 3.0);
}

TEST(Tracer, FlowIdsAreUniqueAndPairUp) {
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer tracer(opt);

  const std::uint64_t a = tracer.flow_begin("task");
  const std::uint64_t b = tracer.flow_begin("task");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  clock.advance_ns(5);
  {
    const TraceSpan s(&tracer, "task", "sim", a);
    clock.advance_ns(5);
  }
  tracer.flow_end("task", b);

  const TraceData data = tracer.drain();
  ASSERT_EQ(data.events.size(), 6u);
  EXPECT_EQ(data.events[0].kind, TraceEventKind::kFlowBegin);
  EXPECT_EQ(data.events[0].flow_id, a);
  // The flow head lands immediately before the span's begin.
  EXPECT_EQ(data.events[2].kind, TraceEventKind::kFlowEnd);
  EXPECT_EQ(data.events[2].flow_id, a);
  EXPECT_EQ(data.events[3].kind, TraceEventKind::kBegin);
  EXPECT_EQ(data.events[3].name, "task");
}

TEST(Tracer, AlternatingTracersReuseOnePerThreadBuffer) {
  // A thread bouncing between two live tracers must keep one buffer (one
  // tid/track) per tracer, not register a fresh ring on every switch.
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer a(opt);
  Tracer b(opt);
  for (int i = 0; i < 4; ++i) {
    a.instant("a", i);
    b.instant("b", i);
    clock.advance_ns(1);
  }
  const TraceData da = a.drain();
  const TraceData db = b.drain();
  EXPECT_EQ(da.tracks.size(), 1u);
  EXPECT_EQ(db.tracks.size(), 1u);
  ASSERT_EQ(da.events.size(), 4u);
  ASSERT_EQ(db.events.size(), 4u);
  for (const TraceEvent& e : da.events) EXPECT_EQ(e.tid, 0u);
  for (const TraceEvent& e : db.events) EXPECT_EQ(e.tid, 0u);
}

TEST(Tracer, PoolWorkersGetNamedTracksConcurrently) {
  // Exercised under TSan in CI: pool threads record while the main thread
  // drains mid-flight, then a final drain must account for every event.
  constexpr unsigned kThreads = 4;
  constexpr int kPerTask = 2'000;
  Tracer tracer;
  support::ThreadPool pool(kThreads, "tp");
  // Hold every task until all have started, so each of the kThreads tasks
  // is pinned to a distinct worker (one idle worker could otherwise drain
  // several tasks and the tracer would see fewer tracks).
  std::atomic<unsigned> started{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.submit([&tracer, &started] {
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kPerTask; ++i) {
        const TraceSpan s(&tracer, "work", "test");
      }
    });
  }
  const TraceData mid = tracer.drain();  // races with recording by design
  EXPECT_LE(mid.events.size(), 2u * kThreads * kPerTask);
  pool.wait();

  const TraceData data = tracer.drain();
  EXPECT_EQ(data.dropped, 0u);
  EXPECT_EQ(data.events.size(), 2u * kThreads * kPerTask);
  ASSERT_EQ(data.tracks.size(), kThreads);
  for (const TraceTrack& track : data.tracks) {
    EXPECT_GE(track.worker_index, 0);
    EXPECT_LT(track.worker_index, static_cast<int>(kThreads));
    EXPECT_EQ(track.label,
              "tp-" + std::to_string(track.worker_index));
  }
}

TEST(Tracer, WriteTraceJsonIsByteStableAndRoundTrips) {
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer tracer(opt);
  {
    const TraceSpan outer(&tracer, "run_casa");
    clock.advance_ns(1'234'567);
    const std::uint64_t flow = tracer.flow_begin("task");
    clock.advance_ns(1);
    {
      const TraceSpan task(&tracer, "task", "sim", flow);
      clock.advance_ns(500);
      tracer.instant("ilp.incumbent", 42.5, "ilp");
      tracer.counter("ilp.nodes", 1024);
      clock.advance_ns(500);
    }
    clock.advance_ns(1);
  }
  const TraceData data = tracer.drain();

  std::ostringstream a, b;
  write_trace_json(a, data, "unit_test");
  write_trace_json(b, data, "unit_test");
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\": \"casa-trace v1\""), std::string::npos);
  EXPECT_NE(a.str().find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(a.str().find("\"thread_name\""), std::string::npos);

  // Nanosecond timestamps survive the microsecond `ts` encoding exactly.
  std::istringstream is(a.str());
  const TraceData back = io::read_trace_json(is);
  EXPECT_EQ(back, data);
}

// ---------------------------------------------------------------------------
// Trace analysis.

TraceEvent make_event(TraceEventKind kind, std::uint32_t tid,
                      std::uint64_t ts_ns, std::string name,
                      std::uint64_t flow_id = 0) {
  TraceEvent e;
  e.kind = kind;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.name = std::move(name);
  e.cat = "test";
  e.flow_id = flow_id;
  return e;
}

TEST(TraceAnalysis, SingleThreadCriticalPathEqualsRootWallTime) {
  FakeClock clock;
  TracerOptions opt;
  opt.clock = &clock;
  Tracer tracer(opt);
  {
    const TraceSpan root(&tracer, "run_casa");
    clock.advance_ns(100);
    {
      const TraceSpan a(&tracer, "allocation");
      clock.advance_ns(300);
    }
    {
      const TraceSpan b(&tracer, "simulation");
      clock.advance_ns(500);
    }
    clock.advance_ns(100);
  }
  const TraceAnalysis analysis = analyze_trace(tracer.drain());
  EXPECT_EQ(analysis.spans, 3u);
  EXPECT_EQ(analysis.unmatched_begins, 0u);
  EXPECT_EQ(analysis.critical_path_ns, 1000u);  // exactly the root span
  std::uint64_t self_sum = 0;
  for (const CriticalStep& step : analysis.critical_path) {
    self_sum += step.self_ns;
  }
  EXPECT_EQ(self_sum, analysis.critical_path_ns);
  ASSERT_FALSE(analysis.critical_path.empty());
  EXPECT_EQ(analysis.critical_path.front().name, "run_casa");
}

TEST(TraceAnalysis, PhaseSelfTimeExcludesChildren) {
  TraceData data;
  data.tracks.push_back({0, -1, "main"});
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 0, "outer"));
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 100, "inner"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 700, "inner"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 1000, "outer"));

  const TraceAnalysis analysis = analyze_trace(data);
  ASSERT_EQ(analysis.phases.size(), 2u);
  const PhaseStat* outer = nullptr;
  const PhaseStat* inner = nullptr;
  for (const PhaseStat& p : analysis.phases) {
    if (p.name == "outer") outer = &p;
    if (p.name == "inner") inner = &p;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->total_ns, 1000u);
  EXPECT_EQ(outer->self_ns, 400u);
  EXPECT_EQ(inner->total_ns, 600u);
  EXPECT_EQ(inner->self_ns, 600u);
}

TEST(TraceAnalysis, CriticalPathFollowsFlowAcrossThreads) {
  TraceData data;
  data.tracks.push_back({0, -1, "main"});
  data.tracks.push_back({1, 0, "tp-0"});
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 0, "batch"));
  data.events.push_back(
      make_event(TraceEventKind::kFlowBegin, 0, 10, "task", 1));
  data.events.push_back(
      make_event(TraceEventKind::kFlowEnd, 1, 20, "task", 1));
  data.events.push_back(make_event(TraceEventKind::kBegin, 1, 20, "task"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 1, 800, "task"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 1000, "batch"));

  const TraceAnalysis analysis = analyze_trace(data);
  EXPECT_EQ(analysis.critical_path_ns, 1000u);
  ASSERT_EQ(analysis.critical_path.size(), 2u);
  EXPECT_EQ(analysis.critical_path[0].name, "batch");
  EXPECT_EQ(analysis.critical_path[1].name, "task");
  EXPECT_EQ(analysis.critical_path[1].tid, 1u);
  // batch keeps what the flow child does not cover: 1000 - 780.
  EXPECT_EQ(analysis.critical_path[0].self_ns, 220u);
  EXPECT_EQ(analysis.critical_path[1].self_ns, 780u);

  ASSERT_EQ(analysis.tracks.size(), 2u);
  EXPECT_EQ(analysis.tracks[1].busy_ns, 780u);
}

TEST(TraceAnalysis, UnmatchedBeginsCloseAtTraceEnd) {
  TraceData data;
  data.tracks.push_back({0, -1, "main"});
  // An end with nothing open is dropped; a begin never closed is clamped to
  // the trace end (Chrome-trace "E" closes the innermost span by position,
  // not by name, so both raggednesses need their own event here).
  data.events.push_back(
      make_event(TraceEventKind::kEnd, 0, 100, "never_opened"));
  data.events.push_back(
      make_event(TraceEventKind::kBegin, 0, 200, "left_open"));
  data.events.push_back(
      make_event(TraceEventKind::kInstant, 0, 500, "marker"));

  const TraceAnalysis analysis = analyze_trace(data);
  EXPECT_EQ(analysis.unmatched_begins, 1u);
  EXPECT_EQ(analysis.unmatched_ends, 1u);
  EXPECT_EQ(analysis.wall_ns, 500u);
  EXPECT_EQ(analysis.critical_path_ns, 300u);  // closed at the trace end

  std::ostringstream os;
  write_trace_summary(os, analysis);  // must not crash on a ragged trace
  EXPECT_NE(os.str().find("critical path: 300 ns"), std::string::npos);
}

TEST(TraceAnalysis, ZeroDurationChildDoesNotStallCriticalPath) {
  // Regression: a zero-length child whose begin/end share a timestamp
  // (coarse clock) used to be re-picked forever — the frontier never
  // advanced past it and analyze_trace hung.
  TraceData data;
  data.tracks.push_back({0, -1, "main"});
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 0, "parent"));
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 5, "blip"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 5, "blip"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 10, "parent"));

  const TraceAnalysis analysis = analyze_trace(data);
  EXPECT_EQ(analysis.critical_path_ns, 10u);
  ASSERT_EQ(analysis.critical_path.size(), 1u);
  EXPECT_EQ(analysis.critical_path[0].name, "parent");
  EXPECT_EQ(analysis.critical_path[0].self_ns, 10u);
}

TEST(TraceAnalysis, OverlappingRootsKeepUtilizationBounded) {
  // A parsed artifact need not be timestamp-sorted, so rebuilt root spans on
  // one thread can overlap; busy time is their union, never above wall.
  TraceData data;
  data.tracks.push_back({0, -1, "main"});
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 100, "late"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 200, "late"));
  data.events.push_back(make_event(TraceEventKind::kBegin, 0, 50, "early"));
  data.events.push_back(make_event(TraceEventKind::kEnd, 0, 300, "early"));

  const TraceAnalysis analysis = analyze_trace(data);
  EXPECT_EQ(analysis.wall_ns, 300u);
  ASSERT_EQ(analysis.tracks.size(), 1u);
  EXPECT_EQ(analysis.tracks[0].busy_ns, 250u);  // union of [50,300)
  EXPECT_LE(analysis.tracks[0].utilization, 1.0);
}

}  // namespace
}  // namespace casa::obs

#include <gtest/gtest.h>

#include "casa/ilp/model.hpp"

namespace casa::ilp {
namespace {

TEST(Model, VariablesGetSequentialIds) {
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_continuous("b", 0, 5);
  EXPECT_EQ(a.index(), 0u);
  EXPECT_EQ(b.index(), 1u);
  EXPECT_EQ(m.var_count(), 2u);
  EXPECT_EQ(m.var(a).type, VarType::kBinary);
  EXPECT_EQ(m.var(b).upper, 5.0);
}

TEST(Model, CrossedBoundsRejected) {
  Model m;
  EXPECT_THROW(m.add_continuous("x", 3, 2), PreconditionError);
}

TEST(Model, BinaryBoundsValidated) {
  Model m;
  EXPECT_THROW(m.add_var("x", VarType::kBinary, 0, 2), PreconditionError);
}

TEST(Model, ConstraintReferencesChecked) {
  Model m;
  m.add_binary("a");
  LinExpr bad;
  bad.add(VarId(7), 1.0);
  EXPECT_THROW(m.add_constraint("c", std::move(bad), Rel::kLessEq, 1),
               PreconditionError);
}

TEST(Model, ObjectiveReferencesChecked) {
  Model m;
  LinExpr bad;
  bad.add(VarId(0), 1.0);
  EXPECT_THROW(m.set_objective(Sense::kMinimize, std::move(bad)),
               PreconditionError);
}

TEST(Model, HasIntegersDetection) {
  Model m;
  m.add_continuous("x", 0, 1);
  EXPECT_FALSE(m.has_integers());
  m.add_binary("b");
  EXPECT_TRUE(m.has_integers());
}

TEST(LinExpr, DropsZeroCoefficients) {
  LinExpr e;
  e.add(VarId(0), 0.0).add(VarId(1), 2.0);
  EXPECT_EQ(e.terms().size(), 1u);
}

TEST(LinExpr, AccumulatesConstant) {
  LinExpr e;
  e.add_constant(2.0).add_constant(3.0);
  EXPECT_DOUBLE_EQ(e.constant(), 5.0);
}

TEST(Model, ToStringContainsStructure) {
  Model m;
  const VarId x = m.add_binary("alloc_x");
  m.add_constraint("cap", LinExpr().add(x, 4.0), Rel::kLessEq, 10.0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 2.5));
  const std::string s = m.to_string();
  EXPECT_NE(s.find("maximize"), std::string::npos);
  EXPECT_NE(s.find("alloc_x"), std::string::npos);
  EXPECT_NE(s.find("cap"), std::string::npos);
  EXPECT_NE(s.find("<="), std::string::npos);
  EXPECT_NE(s.find("(binary)"), std::string::npos);
}

TEST(Model, SolveStatusNames) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kLimit), "limit");
}

TEST(Solution, ValueAccessChecked) {
  Solution s;
  s.values = {0.25};
  EXPECT_DOUBLE_EQ(s.value(VarId(0)), 0.25);
  EXPECT_FALSE(s.value_as_bool(VarId(0)));
  EXPECT_THROW(s.value(VarId(3)), PreconditionError);
}

}  // namespace
}  // namespace casa::ilp

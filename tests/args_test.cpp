#include <gtest/gtest.h>

#include "casa/obs/export.hpp"
#include "casa/support/args.hpp"
#include "casa/support/error.hpp"

namespace casa {
namespace {

TEST(Args, KeyEqualsValue) {
  ArgParser a({"--workload=mpeg"});
  EXPECT_EQ(a.get("workload", "adpcm"), "mpeg");
}

TEST(Args, KeySpaceValue) {
  ArgParser a({"--spm", "512"});
  EXPECT_EQ(a.get_u64("spm", 0), 512u);
}

TEST(Args, DefaultWhenAbsent) {
  ArgParser a({});
  EXPECT_EQ(a.get("workload", "adpcm"), "adpcm");
  EXPECT_EQ(a.get_u64("spm", 256), 256u);
  EXPECT_DOUBLE_EQ(a.get_double("ratio", 0.5), 0.5);
  EXPECT_FALSE(a.get_flag("csv"));
}

TEST(Args, BareFlagIsTrue) {
  ArgParser a({"--csv"});
  EXPECT_TRUE(a.get_flag("csv"));
}

TEST(Args, FlagFollowedByAnotherFlag) {
  ArgParser a({"--csv", "--verbose"});
  EXPECT_TRUE(a.get_flag("csv"));
  EXPECT_TRUE(a.get_flag("verbose"));
}

TEST(Args, NumericValidation) {
  ArgParser a({"--spm=banana"});
  EXPECT_THROW(a.get_u64("spm", 0), PreconditionError);
  ArgParser b({"--ratio=x"});
  EXPECT_THROW(b.get_double("ratio", 0.0), PreconditionError);
}

TEST(Args, DoubleParsing) {
  ArgParser a({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(a.get_double("ratio", 0.0), 0.75);
}

// std::stoull/stod accept partial parses, leading whitespace, and (for
// unsigned) wrap negative values — a mistyped "--ilp-threads=4x" must be an
// error, never a silent 4.
TEST(Args, U64RejectsTrailingJunk) {
  ArgParser a({"--ilp-threads=4x"});
  EXPECT_THROW(a.get_u64("ilp-threads", 1), PreconditionError);
}

TEST(Args, U64RejectsSignsAndWhitespace) {
  ArgParser a({"--spm=-3"});
  EXPECT_THROW(a.get_u64("spm", 0), PreconditionError);
  ArgParser b({"--spm", " 4"});
  EXPECT_THROW(b.get_u64("spm", 0), PreconditionError);
  ArgParser c({"--spm=+4"});
  EXPECT_THROW(c.get_u64("spm", 0), PreconditionError);
  ArgParser d({"--spm="});
  EXPECT_THROW(d.get_u64("spm", 0), PreconditionError);
}

TEST(Args, U64RejectsOutOfRange) {
  ArgParser a({"--spm=99999999999999999999999999"});
  EXPECT_THROW(a.get_u64("spm", 0), PreconditionError);
}

TEST(Args, U64ErrorNamesTheKeyAndValue) {
  ArgParser a({"--ilp-threads=4x"});
  try {
    a.get_u64("ilp-threads", 1);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--ilp-threads"), std::string::npos);
    EXPECT_NE(what.find("4x"), std::string::npos);
  }
}

TEST(Args, DoubleRejectsPartialParse) {
  ArgParser a({"--ratio=1.5x"});
  EXPECT_THROW(a.get_double("ratio", 0.0), PreconditionError);
  ArgParser b({"--ratio= 1.5"});
  EXPECT_THROW(b.get_double("ratio", 0.0), PreconditionError);
  ArgParser c({"--ratio=0.5"});
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 0.5);
  ArgParser d({"--ratio=-0.5"});
  EXPECT_DOUBLE_EQ(d.get_double("ratio", 0.0), -0.5);  // signs are fine here
}

TEST(Args, UnknownKeysReported) {
  ArgParser a({"--known=1", "--mystery=2"});
  a.get_u64("known", 0);
  const auto unknown = a.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "mystery");
}

TEST(Args, RejectUnknownAcceptsCleanCommandLine) {
  ArgParser a({"--spm=512"});
  a.get_u64("spm", 0);
  EXPECT_NO_THROW(a.reject_unknown());
}

TEST(Args, RejectUnknownThrowsNamingTheStray) {
  ArgParser a({"--spm=512", "--mystery=2"});
  a.get_u64("spm", 0);
  try {
    a.reject_unknown();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--mystery"), std::string::npos);
  }
}

TEST(Args, RejectUnknownSuggestsNearMiss) {
  ArgParser a({"--workloda=mpeg"});  // transposition of --workload
  a.get("workload", "adpcm");
  a.get_u64("spm", 0);
  try {
    a.reject_unknown();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean --workload?"),
              std::string::npos);
  }
}

TEST(Args, RejectUnknownOmitsFarFetchedSuggestions) {
  ArgParser a({"--zzzzzzzzzz=1"});
  a.get("workload", "adpcm");
  try {
    a.reject_unknown();
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(Args, RejectUnknownIsSilencedByHelp) {
  ArgParser a({"--help", "--mystery=2"});
  a.get("workload", "adpcm");
  EXPECT_TRUE(a.help_requested());
  EXPECT_NO_THROW(a.reject_unknown());
}

TEST(Args, HelpRequested) {
  ArgParser a({"--help"});
  EXPECT_TRUE(a.help_requested());
}

TEST(Args, HelpTextListsDeclaredKeys) {
  ArgParser a({});
  a.get("workload", "adpcm", "which benchmark");
  const std::string h = a.help();
  EXPECT_NE(h.find("--workload"), std::string::npos);
  EXPECT_NE(h.find("which benchmark"), std::string::npos);
}

TEST(Args, RejectsPositionalArguments) {
  EXPECT_THROW(ArgParser({"mpeg"}), PreconditionError);
}

TEST(Args, LastValueWins) {
  ArgParser a({"--spm=128", "--spm=512"});
  EXPECT_EQ(a.get_u64("spm", 0), 512u);
}

// casa_cli feeds --metrics-json / --metrics-stdout straight into
// obs::plan_artifact_sinks; cover the full flag-combination matrix here so
// the dedupe contract ("each distinct sink written exactly once") is pinned
// at the parsing layer.
TEST(ArgsMetricsSinks, MetricsJsonDashBehavesLikeMetricsStdout) {
  ArgParser a({"--metrics-json=-"});
  const obs::ArtifactSinkPlan plan = obs::plan_artifact_sinks(
      a.get("metrics-json", ""), a.get_flag("metrics-stdout"));
  EXPECT_TRUE(plan.to_stdout);
  EXPECT_TRUE(plan.file.empty());
  EXPECT_TRUE(plan.note.empty());
}

TEST(ArgsMetricsSinks, RedundantDashPlusStdoutWritesOnceAndNotes) {
  ArgParser a({"--metrics-json=-", "--metrics-stdout"});
  const obs::ArtifactSinkPlan plan = obs::plan_artifact_sinks(
      a.get("metrics-json", ""), a.get_flag("metrics-stdout"));
  EXPECT_TRUE(plan.to_stdout);
  EXPECT_TRUE(plan.file.empty());  // stdout is ONE sink, not two writes
  EXPECT_FALSE(plan.note.empty());
}

TEST(ArgsMetricsSinks, FileAndStdoutAreDistinctSinks) {
  ArgParser a({"--metrics-json=m.json", "--metrics-stdout"});
  const obs::ArtifactSinkPlan plan = obs::plan_artifact_sinks(
      a.get("metrics-json", ""), a.get_flag("metrics-stdout"));
  EXPECT_TRUE(plan.to_stdout);
  EXPECT_EQ(plan.file, "m.json");
}

TEST(ArgsMetricsSinks, NeitherFlagMeansNoSinks) {
  ArgParser a({});
  const obs::ArtifactSinkPlan plan = obs::plan_artifact_sinks(
      a.get("metrics-json", ""), a.get_flag("metrics-stdout"));
  EXPECT_FALSE(plan.to_stdout);
  EXPECT_TRUE(plan.file.empty());
}

}  // namespace
}  // namespace casa

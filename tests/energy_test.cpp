#include <gtest/gtest.h>

#include <tuple>

#include "casa/energy/cache_energy.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/energy/loopcache_energy.hpp"
#include "casa/energy/main_memory.hpp"
#include "casa/energy/spm_energy.hpp"
#include "casa/energy/sram_array.hpp"
#include "casa/support/error.hpp"

namespace casa::energy {
namespace {

cachesim::CacheConfig cache_cfg(Bytes size, unsigned assoc = 1) {
  cachesim::CacheConfig c;
  c.size = size;
  c.line_size = 16;
  c.associativity = assoc;
  return c;
}

TEST(SramArray, AllStagesPositive) {
  const SramArray a{128, 128};
  const auto& t = arm7_tech();
  EXPECT_GT(a.decode_energy(t), 0.0);
  EXPECT_GT(a.wordline_energy(t), 0.0);
  EXPECT_GT(a.bitline_read_energy(t), 0.0);
  EXPECT_GT(a.sense_energy(t), 0.0);
  EXPECT_GT(a.read_energy(t, 32), 0.0);
}

TEST(SramArray, ReadEnergyGrowsWithRows) {
  const auto& t = arm7_tech();
  const SramArray small{64, 128}, big{512, 128};
  EXPECT_LT(small.read_energy(t, 32), big.read_energy(t, 32));
}

TEST(SramArray, ReadEnergyGrowsWithCols) {
  const auto& t = arm7_tech();
  const SramArray narrow{128, 32}, wide{128, 256};
  EXPECT_LT(narrow.read_energy(t, 32), wide.read_energy(t, 32));
}

TEST(SramArray, WriteCostsMoreThanReadPerBit) {
  const auto& t = arm7_tech();
  const SramArray a{128, 128};
  EXPECT_GT(a.write_energy(t, 128), a.bitline_read_energy(t));
}

TEST(CacheEnergy, MissMuchMoreExpensiveThanHit) {
  const CacheEnergyModel m(cache_cfg(2_KiB));
  EXPECT_GT(m.miss_energy(), 10.0 * m.hit_energy());
  EXPECT_LT(m.miss_energy(), 200.0 * m.hit_energy());
}

TEST(CacheEnergy, HitEnergyGrowsWithSize) {
  EXPECT_LT(CacheEnergyModel(cache_cfg(128)).hit_energy(),
            CacheEnergyModel(cache_cfg(2_KiB)).hit_energy());
  EXPECT_LT(CacheEnergyModel(cache_cfg(2_KiB)).hit_energy(),
            CacheEnergyModel(cache_cfg(16_KiB)).hit_energy());
}

TEST(CacheEnergy, AssociativityCostsEnergy) {
  EXPECT_LT(CacheEnergyModel(cache_cfg(2_KiB, 1)).hit_energy(),
            CacheEnergyModel(cache_cfg(2_KiB, 4)).hit_energy());
}

TEST(CacheEnergy, TagBitsShrinkWithBiggerCache) {
  const CacheEnergyModel small(cache_cfg(128));
  const CacheEnergyModel big(cache_cfg(8_KiB));
  EXPECT_GT(small.tag_bits(), big.tag_bits());
}

TEST(SpmEnergy, CheaperThanEqualSizedCacheHit) {
  // The architectural claim (Banakar et al.): no tags, no comparators.
  for (const Bytes size : {256u, 1024u, 2048u}) {
    const SpmEnergyModel spm(size);
    const CacheEnergyModel cache(cache_cfg(size));
    EXPECT_LT(spm.access_energy(), cache.hit_energy())
        << "size " << size;
  }
}

TEST(SpmEnergy, GrowsWithSize) {
  EXPECT_LT(SpmEnergyModel(128).access_energy(),
            SpmEnergyModel(2_KiB).access_energy());
}

TEST(SpmEnergy, RejectsBadSizes) {
  EXPECT_THROW(SpmEnergyModel(4), PreconditionError);
  EXPECT_THROW(SpmEnergyModel(130), PreconditionError);
}

TEST(LoopCacheEnergy, CostsMoreThanSpmOfSameSize) {
  // Same array + bound-comparator controller.
  const LoopCacheEnergyModel lc(512, 4);
  const SpmEnergyModel spm(512);
  EXPECT_GT(lc.access_energy(), spm.access_energy());
  EXPECT_GT(lc.controller_energy(), 0.0);
}

TEST(LoopCacheEnergy, ControllerScalesWithRegions) {
  EXPECT_LT(LoopCacheEnergyModel(512, 2).controller_energy(),
            LoopCacheEnergyModel(512, 8).controller_energy());
}

TEST(MainMemory, BurstScalesWithBytes) {
  const MainMemoryModel m;
  EXPECT_LT(m.burst_read_energy(16), m.burst_read_energy(32));
  EXPECT_GT(m.word_read_energy(), 0.0);
}

TEST(MainMemory, DominatesOnChipAccess) {
  const MainMemoryModel m;
  const CacheEnergyModel cache(cache_cfg(2_KiB));
  EXPECT_GT(m.burst_read_energy(16), 5.0 * cache.hit_energy());
}

TEST(EnergyTable, BuildsAllEntries) {
  const EnergyTable t = EnergyTable::build(cache_cfg(2_KiB), 512, 256, 4);
  EXPECT_GT(t.cache_hit, 0.0);
  EXPECT_GT(t.cache_miss, t.cache_hit);
  EXPECT_GT(t.spm_access, 0.0);
  EXPECT_LT(t.spm_access, t.cache_hit);
  EXPECT_GT(t.lc_access, t.spm_access);  // controller overhead
  EXPECT_GT(t.lc_controller, 0.0);
  EXPECT_GT(t.mainmem_word, t.cache_hit);
}

TEST(EnergyTable, OmitsAbsentComponents) {
  const EnergyTable t = EnergyTable::build(cache_cfg(2_KiB), 0, 0, 0);
  EXPECT_EQ(t.spm_access, 0.0);
  EXPECT_EQ(t.lc_access, 0.0);
}

TEST(EnergyTable, PaperRegimeRatios) {
  // The ratios the reproduction depends on (DESIGN.md §5): for the mpeg
  // configuration, E_miss/E_hit within [20, 100] and E_sp/E_hit in
  // [0.2, 0.8] at the paper's sizes.
  const EnergyTable t = EnergyTable::build(cache_cfg(2_KiB), 1_KiB, 0, 0);
  EXPECT_GE(t.cache_miss / t.cache_hit, 20.0);
  EXPECT_LE(t.cache_miss / t.cache_hit, 100.0);
  EXPECT_GE(t.spm_access / t.cache_hit, 0.2);
  EXPECT_LE(t.spm_access / t.cache_hit, 0.8);
}

// Parameterized monotonicity sweep: scratchpad energy strictly increases
// with capacity across the whole sweep range.
class SpmSweep : public ::testing::TestWithParam<Bytes> {};

TEST_P(SpmSweep, MonotoneInSize) {
  const Bytes size = GetParam();
  EXPECT_LT(SpmEnergyModel(size).access_energy(),
            SpmEnergyModel(size * 2).access_energy());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpmSweep,
                         ::testing::Values<Bytes>(64, 128, 256, 512, 1024,
                                                  2048, 4096));

}  // namespace
}  // namespace casa::energy

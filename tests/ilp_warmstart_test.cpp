// Workload-level guarantees for the warm-started, presolved branch & bound:
//
//  * seeding the search with the Steinke knapsack incumbent (plus root
//    reduced-cost fixing) cuts the explored node count at least in half on
//    a bundled workload where the paper linearization makes the search
//    genuinely hard, without changing the optimum;
//  * the allocator's answer is bit-identical whatever ilp_threads is.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "casa/baseline/steinke.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/formulation.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa {
namespace {

/// `CasaProblem` keeps a pointer to the conflict graph, so the graph and the
/// problem live together on the heap: the holder's address never moves and
/// `problem.graph` stays valid for as long as the caller keeps the pipeline.
struct Pipeline {
  conflict::ConflictGraph graph;
  core::CasaProblem problem;
};

std::unique_ptr<Pipeline> make_pipeline(const std::string& name, Bytes spm) {
  const auto program = workloads::by_name(name);
  const auto exec = trace::Executor::run(program);
  const auto cache_cfg = workloads::paper_cache_for(name);
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache_cfg.line_size;
  topt.max_trace_size = spm;
  const auto tp = traceopt::form_traces(program, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  conflict::BuildOptions bopt;
  bopt.cache = cache_cfg;
  const auto energies = energy::EnergyTable::build(cache_cfg, spm, 0, 0);
  auto p = std::make_unique<Pipeline>(Pipeline{
      conflict::build_conflict_graph(tp, layout, exec.walk, bopt),
      core::CasaProblem{}});
  p->problem = core::CasaProblem::from(tp, p->graph, energies, spm);
  return p;
}

core::SavingsProblem make_sp(const std::string& name, Bytes spm) {
  return core::presolve(make_pipeline(name, spm)->problem);
}

/// Solves a workload's CASA model with or without the warm-start/presolve
/// machinery and returns the solver's statistics alongside the solution.
struct SolveRun {
  ilp::Solution sol;
  ilp::SolveStats stats;
};

SolveRun solve_generic(const core::SavingsProblem& sp, core::Linearization lin,
                  bool assisted, std::uint64_t max_nodes = 2'000'000) {
  const core::CasaModel cm = core::build_casa_model(sp, lin);
  ilp::BranchAndBoundOptions opt;
  opt.max_nodes = max_nodes;
  opt.presolve = assisted;
  opt.warm_start = assisted;
  if (assisted && sp.item_count() > 0) {
    opt.warm_hint = core::warm_assignment(
        cm, sp, baseline::knapsack_seed(sp.weight, sp.value, sp.capacity));
  }
  // Mirror the allocator's branching priorities (l-vars first).
  opt.branch_priority.assign(cm.model.var_count(), 0);
  for (const VarId l : cm.l_vars) opt.branch_priority[l.index()] = 1;
  ilp::BranchAndBound solver(opt);
  SolveRun r;
  r.sol = solver.solve(cm.model);
  r.stats = solver.last_stats();
  return r;
}

TEST(WarmStartWorkload, HalvesExploredNodesOnAdpcmPaperLinearization) {
  // adpcm at a 512 B scratchpad under the paper's weak linearization: the
  // plain search wanders for thousands of nodes, the knapsack-seeded one
  // fixes dozens of binaries at the root via reduced costs and finishes in
  // a fraction of them. This is the PR's headline >= 2x claim.
  const core::SavingsProblem sp = make_sp("adpcm", 512);
  const SolveRun warm = solve_generic(sp, core::Linearization::kPaper, true);
  ASSERT_EQ(warm.sol.status, ilp::SolveStatus::kOptimal);
  EXPECT_TRUE(warm.stats.warm_start_used);
  EXPECT_GT(warm.stats.root_gap, 0.0);
  EXPECT_GT(warm.stats.rc_fixed, 0u);

  // The cold run gets a node budget of 2x the warm count plus slack: either
  // it finishes within the budget having explored >= 2x the nodes, or it is
  // truncated at the budget — both prove the >= 2x reduction without paying
  // for the full cold optimality proof (~5x warm's nodes on this instance).
  const std::uint64_t budget = 2 * warm.stats.nodes + 256;
  const SolveRun cold =
      solve_generic(sp, core::Linearization::kPaper, false, budget);
  ASSERT_NE(cold.sol.status, ilp::SolveStatus::kInfeasible);
  if (cold.sol.status == ilp::SolveStatus::kOptimal) {
    EXPECT_NEAR(warm.sol.objective, cold.sol.objective,
                1e-6 * (1.0 + std::abs(cold.sol.objective)));
  } else {
    EXPECT_EQ(cold.sol.status, ilp::SolveStatus::kLimit);
  }
  EXPECT_GE(cold.stats.nodes, 2 * warm.stats.nodes)
      << "cold=" << cold.stats.nodes << " warm=" << warm.stats.nodes;
}

TEST(WarmStartWorkload, NeverWorseThanColdOnTightLinearization) {
  // The default (tight) linearization already solves in a handful of
  // nodes; the warm machinery must not make it worse.
  const core::SavingsProblem sp = make_sp("adpcm", 64);
  const SolveRun cold = solve_generic(sp, core::Linearization::kTight, false);
  const SolveRun warm = solve_generic(sp, core::Linearization::kTight, true);
  ASSERT_EQ(cold.sol.status, ilp::SolveStatus::kOptimal);
  ASSERT_EQ(warm.sol.status, ilp::SolveStatus::kOptimal);
  EXPECT_NEAR(warm.sol.objective, cold.sol.objective,
              1e-6 * (1.0 + std::abs(cold.sol.objective)));
  EXPECT_LE(warm.stats.nodes, cold.stats.nodes);
}

TEST(WarmStartWorkload, KnapsackSeedIsFeasibleForTheFullModel) {
  const core::SavingsProblem sp = make_sp("g721", 256);
  ASSERT_GT(sp.item_count(), 0u);
  const std::vector<bool> seed =
      baseline::knapsack_seed(sp.weight, sp.value, sp.capacity);
  ASSERT_EQ(seed.size(), sp.item_count());
  // The seed respects the capacity row: scratchpad bytes of the chosen
  // items (l_k = 0) never exceed the scratchpad.
  Bytes spm_bytes = 0;
  for (std::size_t k = 0; k < seed.size(); ++k) {
    if (seed[k]) spm_bytes += sp.weight[k];
  }
  EXPECT_LE(spm_bytes, sp.capacity);
  // And its lift satisfies the generic model verbatim (the solver would
  // otherwise reject the hint and the warm start would silently degrade).
  const core::CasaModel cm =
      core::build_casa_model(sp, core::Linearization::kTight);
  const std::vector<double> hint = core::warm_assignment(cm, sp, seed);
  ilp::BranchAndBoundOptions opt;
  opt.warm_hint = hint;
  opt.max_nodes = 1;  // only the seeded incumbent can supply a solution
  opt.warm_start = true;
  ilp::BranchAndBound solver(opt);
  const ilp::Solution s = solver.solve(cm.model);
  EXPECT_TRUE(solver.last_stats().warm_start_used);
  EXPECT_FALSE(s.values.empty());
}

TEST(WarmStartWorkload, AllocatorIsThreadCountInvariant) {
  const std::unique_ptr<Pipeline> p = make_pipeline("adpcm", 256);
  core::AllocationResult first;
  for (const unsigned threads : {1u, 2u, 8u}) {
    core::CasaOptions copt;
    copt.engine = core::CasaEngine::kGenericIlp;
    copt.ilp_threads = threads;
    const core::AllocationResult r =
        core::CasaAllocator(copt).allocate(p->problem);
    EXPECT_EQ(r.solver_status, ilp::SolveStatus::kOptimal);
    if (threads == 1u) {
      first = r;
    } else {
      EXPECT_EQ(r.on_spm, first.on_spm) << "threads=" << threads;
      EXPECT_EQ(r.used_bytes, first.used_bytes);
      EXPECT_EQ(r.predicted_energy, first.predicted_energy);
      EXPECT_EQ(r.solver_stats.nodes, first.solver_stats.nodes);
      EXPECT_EQ(r.solver_stats.simplex_iterations,
                first.solver_stats.simplex_iterations);
    }
  }
}

}  // namespace
}  // namespace casa

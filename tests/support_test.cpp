#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "casa/support/error.hpp"
#include "casa/support/ids.hpp"
#include "casa/support/interval_map.hpp"
#include "casa/support/rng.hpp"
#include "casa/support/table.hpp"
#include "casa/support/units.hpp"

namespace casa {
namespace {

// ------------------------------------------------------------------ Rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedRemapped) {
  Rng a(0);
  EXPECT_NE(a.next_u64(), 0u);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng r(1);
  EXPECT_THROW(r.next_below(0), PreconditionError);
}

TEST(Rng, NextUnitInHalfOpenInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(Rng, NextInSingleton) {
  Rng r(9);
  EXPECT_EQ(r.next_in(5, 5), 5);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(42);
  Rng fork1 = a.fork();
  Rng b(42);
  Rng fork2 = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
  }
}

// ------------------------------------------------------------------ Ids ---

TEST(Ids, InvalidByDefault) {
  BasicBlockId id;
  EXPECT_FALSE(id.valid());
}

TEST(Ids, ValueRoundTrip) {
  MemoryObjectId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Ids, Comparable) {
  EXPECT_LT(VarId(1), VarId(2));
  EXPECT_EQ(VarId(3), VarId(3));
}

TEST(Ids, Hashable) {
  std::unordered_set<FunctionId> s;
  s.insert(FunctionId(1));
  s.insert(FunctionId(1));
  s.insert(FunctionId(2));
  EXPECT_EQ(s.size(), 2u);
}

// ---------------------------------------------------------- IntervalMap ---

TEST(IntervalMap, FindsContainingRange) {
  IntervalMap<int> m;
  m.insert(10, 20, 1);
  m.insert(30, 40, 2);
  EXPECT_EQ(m.find(10), 1);
  EXPECT_EQ(m.find(19), 1);
  EXPECT_EQ(m.find(35), 2);
}

TEST(IntervalMap, HalfOpenSemantics) {
  IntervalMap<int> m;
  m.insert(10, 20, 1);
  EXPECT_FALSE(m.find(20).has_value());
  EXPECT_FALSE(m.find(9).has_value());
}

TEST(IntervalMap, AdjacentRangesAllowed) {
  IntervalMap<int> m;
  m.insert(10, 20, 1);
  m.insert(20, 30, 2);
  EXPECT_EQ(m.find(19), 1);
  EXPECT_EQ(m.find(20), 2);
}

TEST(IntervalMap, RejectsOverlap) {
  IntervalMap<int> m;
  m.insert(10, 20, 1);
  EXPECT_THROW(m.insert(15, 25, 2), PreconditionError);
  EXPECT_THROW(m.insert(5, 11, 2), PreconditionError);
  EXPECT_THROW(m.insert(12, 18, 2), PreconditionError);
}

TEST(IntervalMap, RejectsEmptyRange) {
  IntervalMap<int> m;
  EXPECT_THROW(m.insert(10, 10, 1), PreconditionError);
}

TEST(IntervalMap, OutOfOrderInsertion) {
  IntervalMap<int> m;
  m.insert(30, 40, 2);
  m.insert(10, 20, 1);
  m.insert(40, 50, 3);
  EXPECT_EQ(m.find(15), 1);
  EXPECT_EQ(m.find(45), 3);
  EXPECT_EQ(m.size(), 3u);
}

// ---------------------------------------------------------------- Table ---

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, FixedPrecisionDoubles) {
  Table t({"x"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("one");
  EXPECT_THROW(t.cell("two"), PreconditionError);
}

TEST(Table, RejectsCellWithoutRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), PreconditionError);
}

TEST(Table, PercentHelper) {
  EXPECT_EQ(percent_of(50.0, 200.0), "25.0%");
  EXPECT_EQ(percent_of(1.0, 0.0), "n/a");
}

// ---------------------------------------------------------------- Units ---

TEST(Units, Literals) {
  EXPECT_EQ(2_KiB, 2048u);
  EXPECT_EQ(16_B, 16u);
}

TEST(Units, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 16), 32u);
}

TEST(Units, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Units, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(16), 4u);
  EXPECT_EQ(log2_pow2(2048), 11u);
}

TEST(Units, MicroJoules) {
  EXPECT_DOUBLE_EQ(to_micro_joules(1500.0), 1.5);
}

// ---------------------------------------------------------------- Error ---

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    CASA_CHECK(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckMacroPassesSilently) {
  EXPECT_NO_THROW(CASA_CHECK(true, "never"));
}

}  // namespace
}  // namespace casa

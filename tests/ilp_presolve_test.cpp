#include <gtest/gtest.h>

#include "casa/ilp/branch_bound.hpp"
#include "casa/ilp/model.hpp"
#include "casa/ilp/presolve.hpp"
#include "casa/support/rng.hpp"

namespace casa::ilp {
namespace {

/// Seeds the bound box from the model's own variable bounds.
std::pair<std::vector<double>, std::vector<double>> box_of(const Model& m) {
  std::vector<double> lo(m.var_count()), hi(m.var_count());
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    const Variable& v = m.var(VarId(static_cast<std::uint32_t>(j)));
    lo[j] = v.lower;
    hi[j] = v.upper;
  }
  return {lo, hi};
}

TEST(Presolve, UnconstrainedBinariesFixedByDualityFixing) {
  // min x + 2y with no constraints: both binaries pin to 0.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1).add(y, 2));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 2u);
  EXPECT_EQ(hi[x.index()], 0.0);
  EXPECT_EQ(hi[y.index()], 0.0);
}

TEST(Presolve, MaximizationFixesTowardUpperBound) {
  // max x with a slack-heavy row: the row is redundant, so duality fixing
  // pins x at 1.
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint("loose", LinExpr().add(x, 1), Rel::kLessEq, 5.0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 1u);
  EXPECT_EQ(lo[x.index()], 1.0);
}

TEST(Presolve, BindingRowBlocksDualityFixing) {
  // max x + y s.t. x + y <= 1: the row can tighten, nothing may be fixed.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("cap", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 1.0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, 1));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 0u);
}

TEST(Presolve, ForcingRowPinsAllParticipants) {
  // x + y <= 0 over [0,1]^2 is satisfiable only with both at 0.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("zero", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 0.0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, 1));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 2u);
  EXPECT_EQ(hi[x.index()], 0.0);
  EXPECT_EQ(hi[y.index()], 0.0);
}

TEST(Presolve, ForcingRowAtMaxActivityPinsGreaterEq) {
  // x + y >= 2 over [0,1]^2 forces both to 1.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("all", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 2.0);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1).add(y, 1));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 2u);
  EXPECT_EQ(lo[x.index()], 1.0);
  EXPECT_EQ(lo[y.index()], 1.0);
}

TEST(Presolve, InfeasibleRowDetected) {
  // x + y >= 3 over [0,1]^2 cannot be satisfied.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("imp", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 3.0);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1));
  auto [lo, hi] = box_of(m);
  EXPECT_FALSE(presolve_box(m, lo, hi).feasible);
}

TEST(Presolve, FixingCascadesThroughRounds) {
  // Forcing z = 1 consumes the whole capacity row, which then forces x and
  // y to 0 in a later round: presolve alone decides the model.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  const VarId z = m.add_binary("z");
  m.add_constraint("need_z", LinExpr().add(z, 1), Rel::kGreaterEq, 1.0);
  m.add_constraint("cap", LinExpr().add(x, 1).add(y, 1).add(z, 1),
                   Rel::kLessEq, 1.0);
  m.set_objective(Sense::kMaximize,
                  LinExpr().add(x, 1).add(y, 1).add(z, 5));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 3u);
  EXPECT_EQ(lo[z.index()], 1.0);
  EXPECT_EQ(hi[x.index()], 0.0);
  EXPECT_EQ(hi[y.index()], 0.0);
  EXPECT_GE(r.rounds, 2u);
}

TEST(Presolve, EqualityRowsNeverDualityFixed) {
  // min x s.t. x + y = 1: x's objective pull must not override the
  // equality; only the solver may decide.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("eq", LinExpr().add(x, 1).add(y, 1), Rel::kEqual, 1.0);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1));
  auto [lo, hi] = box_of(m);
  const PresolveResult r = presolve_box(m, lo, hi);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.fixed, 0u);
}

/// Presolve must preserve the optimal objective value on random knapsacks:
/// solving over the tightened box matches solving the untouched model.
class PresolveRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveRandomTest, PreservesOptimalValue) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 5);
  const int n = 10;
  Model m;
  LinExpr cap, obj;
  for (int j = 0; j < n; ++j) {
    const VarId x = m.add_binary("x" + std::to_string(j));
    cap.add(x, 1.0 + rng.next_unit() * 9.0);
    // Mix in worthless items so duality fixing has something to do.
    obj.add(x, rng.next_unit() * 10.0 - 2.0);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq,
                   10.0 + rng.next_unit() * 20.0);
  m.set_objective(Sense::kMaximize, std::move(obj));

  BranchAndBoundOptions off;
  off.presolve = false;
  off.warm_start = false;
  const Solution plain = BranchAndBound(off).solve(m);

  BranchAndBoundOptions on;
  on.presolve = true;
  on.warm_start = false;
  const Solution pre = BranchAndBound(on).solve(m);

  ASSERT_EQ(plain.status, SolveStatus::kOptimal);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_NEAR(pre.objective, plain.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace casa::ilp

#include <gtest/gtest.h>

#include "casa/prog/builder.hpp"
#include "casa/prog/program.hpp"
#include "casa/support/error.hpp"

namespace casa::prog {
namespace {

Program linear_program() {
  ProgramBuilder b("linear");
  b.function("main", [](FunctionScope& f) {
    f.code(16, "a").code(32, "b").code(48, "c");
  });
  return b.build();
}

TEST(Builder, LinearSequenceBlocksAndSizes) {
  const Program p = linear_program();
  EXPECT_EQ(p.block_count(), 3u);
  EXPECT_EQ(p.code_size(), 96u);
  EXPECT_EQ(p.function_count(), 1u);
}

TEST(Builder, LinearSequenceFallthroughEdges) {
  const Program p = linear_program();
  const auto& blocks = p.function(p.entry()).blocks();
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(p.fallthrough_successor(blocks[0]), blocks[1]);
  EXPECT_EQ(p.fallthrough_successor(blocks[1]), blocks[2]);
  EXPECT_FALSE(p.fallthrough_successor(blocks[2]).valid());
}

TEST(Builder, LayoutIndexFollowsCreationOrder) {
  const Program p = linear_program();
  const auto& blocks = p.function(p.entry()).blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(p.block(blocks[i]).layout_index, i);
  }
}

TEST(Builder, LoopCreatesHeaderAndLatch) {
  ProgramBuilder b("loops");
  b.function("main", [](FunctionScope& f) {
    f.loop(3, [](FunctionScope& l) { l.code(16, "body"); });
  });
  const Program p = b.build();
  // header + body + latch
  EXPECT_EQ(p.block_count(), 3u);
  ASSERT_EQ(p.loop_regions().size(), 1u);
  EXPECT_EQ(p.loop_regions()[0].blocks.size(), 3u);
  EXPECT_EQ(p.loop_regions()[0].depth, 1u);
}

TEST(Builder, LoopBackEdgeIsNotFallthrough) {
  ProgramBuilder b("loops");
  b.function("main", [](FunctionScope& f) {
    f.loop(3, [](FunctionScope& l) { l.code(16, "body"); });
  });
  const Program p = b.build();
  const auto& blocks = p.function(p.entry()).blocks();
  const BasicBlockId header = blocks[0], body = blocks[1], latch = blocks[2];
  EXPECT_EQ(p.fallthrough_successor(header), body);
  bool found_back_edge = false;
  for (const CfgEdge& e : p.edges()) {
    if (e.from == latch && e.to == body) {
      EXPECT_FALSE(e.fallthrough);
      found_back_edge = true;
    }
  }
  EXPECT_TRUE(found_back_edge);
}

TEST(Builder, NestedLoopDepths) {
  ProgramBuilder b("nest");
  b.function("main", [](FunctionScope& f) {
    f.loop(2, [](FunctionScope& outer) {
      outer.loop(2, [](FunctionScope& inner) { inner.code(8, "x"); });
    });
  });
  const Program p = b.build();
  ASSERT_EQ(p.loop_regions().size(), 2u);
  // Inner loop lowered first (post-order recursion).
  EXPECT_EQ(p.loop_regions()[0].depth, 2u);
  EXPECT_EQ(p.loop_regions()[1].depth, 1u);
  EXPECT_GT(p.loop_regions()[1].blocks.size(),
            p.loop_regions()[0].blocks.size());
}

TEST(Builder, IfElseEdges) {
  ProgramBuilder b("cond");
  b.function("main", [](FunctionScope& f) {
    f.if_else(
        0.5, [](FunctionScope& t) { t.code(16, "then"); },
        [](FunctionScope& e) { e.code(16, "else"); });
    f.code(16, "join");
  });
  const Program p = b.build();
  const auto& blocks = p.function(p.entry()).blocks();
  ASSERT_EQ(blocks.size(), 4u);  // cond, then, else, join
  const BasicBlockId cond = blocks[0], then_b = blocks[1], else_b = blocks[2],
                     join = blocks[3];
  EXPECT_EQ(p.fallthrough_successor(cond), then_b);
  // then jumps over else (not fallthrough); else falls through to join.
  for (const CfgEdge& e : p.edges()) {
    if (e.from == then_b && e.to == join) {
      EXPECT_FALSE(e.fallthrough);
    }
    if (e.from == else_b && e.to == join) {
      EXPECT_TRUE(e.fallthrough);
    }
    if (e.from == cond && e.to == else_b) {
      EXPECT_FALSE(e.fallthrough);
    }
  }
}

TEST(Builder, IfWithoutElseSkipEdge) {
  ProgramBuilder b("cond");
  b.function("main", [](FunctionScope& f) {
    f.if_then(0.5, [](FunctionScope& t) { t.code(16, "then"); });
    f.code(16, "join");
  });
  const Program p = b.build();
  const auto& blocks = p.function(p.entry()).blocks();
  ASSERT_EQ(blocks.size(), 3u);
  bool skip_edge = false;
  for (const CfgEdge& e : p.edges()) {
    if (e.from == blocks[0] && e.to == blocks[2]) {
      EXPECT_FALSE(e.fallthrough);
      skip_edge = true;
    }
  }
  EXPECT_TRUE(skip_edge);
}

TEST(Builder, CallCreatesSiteAndCrossFunctionEdge) {
  ProgramBuilder b("calls");
  b.function("main", [](FunctionScope& f) { f.call("helper"); });
  b.function("helper", [](FunctionScope& f) { f.code(16, "h"); });
  const Program p = b.build();
  EXPECT_EQ(p.function_count(), 2u);
  const auto& main_blocks = p.function(p.entry()).blocks();
  ASSERT_EQ(main_blocks.size(), 1u);
  bool call_edge = false;
  for (const CfgEdge& e : p.edges()) {
    if (e.from == main_blocks[0] &&
        p.block(e.to).function != p.entry()) {
      EXPECT_FALSE(e.fallthrough);
      call_edge = true;
    }
  }
  EXPECT_TRUE(call_edge);
}

TEST(Builder, ForwardCallResolvedAtBuild) {
  ProgramBuilder b("fwd");
  b.function("main", [](FunctionScope& f) { f.call("later"); });
  b.function("later", [](FunctionScope& f) { f.code(8, "x"); });
  EXPECT_NO_THROW(b.build());
}

TEST(Builder, UndefinedCalleeRejected) {
  ProgramBuilder b("bad");
  b.function("main", [](FunctionScope& f) { f.call("ghost"); });
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Builder, MissingEntryRejected) {
  ProgramBuilder b("bad");
  b.function("not_main", [](FunctionScope& f) { f.code(8, "x"); });
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Builder, DoubleDefinitionRejected) {
  ProgramBuilder b("bad");
  b.function("main", [](FunctionScope& f) { f.code(8, "x"); });
  EXPECT_THROW(
      b.function("main", [](FunctionScope& f) { f.code(8, "y"); }),
      PreconditionError);
}

TEST(Builder, NonWordBlockSizeRejected) {
  ProgramBuilder b("bad");
  EXPECT_THROW(
      b.function("main", [](FunctionScope& f) { f.code(10, "x"); }),
      PreconditionError);
}

TEST(Builder, ZeroBlockSizeRejected) {
  ProgramBuilder b("bad");
  EXPECT_THROW(
      b.function("main", [](FunctionScope& f) { f.code(0, "x"); }),
      PreconditionError);
}

TEST(Builder, EmptyLoopBodyRejected) {
  ProgramBuilder b("bad");
  EXPECT_THROW(b.function("main",
                          [](FunctionScope& f) {
                            f.loop(3, [](FunctionScope&) {});
                          }),
               PreconditionError);
}

TEST(Builder, BadBranchProbabilityRejected) {
  ProgramBuilder b("bad");
  EXPECT_THROW(
      b.function("main",
                 [](FunctionScope& f) {
                   f.if_then(1.5,
                             [](FunctionScope& t) { t.code(8, "x"); });
                 }),
      PreconditionError);
}

TEST(Builder, SwitchWeightsValidated) {
  ProgramBuilder b("bad");
  EXPECT_THROW(
      b.function("main",
                 [](FunctionScope& f) {
                   f.switch_of({0.0, 0.0},
                               {[](FunctionScope& a) { a.code(8, "x"); },
                                [](FunctionScope& a) { a.code(8, "y"); }});
                 }),
      PreconditionError);
}

TEST(Builder, SwitchArmEdgesNotFallthrough) {
  ProgramBuilder b("sw");
  b.function("main", [](FunctionScope& f) {
    f.switch_of({0.5, 0.5}, {[](FunctionScope& a) { a.code(8, "a0"); },
                             [](FunctionScope& a) { a.code(8, "a1"); }});
    f.code(8, "join");
  });
  const Program p = b.build();
  const auto& blocks = p.function(p.entry()).blocks();
  // selector, arm0, arm1, join
  ASSERT_EQ(blocks.size(), 4u);
  for (const CfgEdge& e : p.edges()) {
    if (e.from == blocks[0]) {
      EXPECT_FALSE(e.fallthrough);
    }
  }
}

TEST(Builder, ControlBlockSizesConfigurable) {
  BuilderConfig cfg;
  cfg.loop_header_size = 16;
  cfg.loop_latch_size = 12;
  ProgramBuilder b("cfg", cfg);
  b.function("main", [](FunctionScope& f) {
    f.loop(2, [](FunctionScope& l) { l.code(8, "x"); });
  });
  const Program p = b.build();
  EXPECT_EQ(p.code_size(), 16u + 12u + 8u);
}

TEST(Builder, BadControlBlockConfigRejected) {
  BuilderConfig cfg;
  cfg.cond_size = 10;  // not a word multiple
  EXPECT_THROW(ProgramBuilder("bad", cfg), PreconditionError);
}

TEST(Program, OutEdgesQuery) {
  ProgramBuilder b("q");
  b.function("main", [](FunctionScope& f) {
    f.if_then(0.5, [](FunctionScope& t) { t.code(8, "t"); });
    f.code(8, "j");
  });
  const Program p = b.build();
  const auto& blocks = p.function(p.entry()).blocks();
  EXPECT_EQ(p.out_edges(blocks[0]).size(), 2u);  // then + skip
}

TEST(Program, BlockLookupBoundsChecked) {
  const Program p = linear_program();
  EXPECT_THROW(p.block(BasicBlockId(99)), PreconditionError);
  EXPECT_THROW(p.function(FunctionId(99)), PreconditionError);
}

}  // namespace
}  // namespace casa::prog

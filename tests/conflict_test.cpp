#include <gtest/gtest.h>

#include "casa/conflict/graph_builder.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::conflict {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

/// Two functions whose bodies alternate every iteration; with a cache
/// smaller than their combined footprint and a layout that maps them onto
/// the same sets, they must ping-pong.
struct PingPong {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;

  PingPong()
      : program(make()),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        layout(traceopt::layout_all(tp)) {}

  static prog::Program make() {
    ProgramBuilder b("pp");
    b.function("main", [](FunctionScope& f) {
      f.loop(1000, [](FunctionScope& l) {
        l.call("f1");
        l.call("f2");
      });
    });
    // Each body fills a 128 B cache by itself: f1 at ~[28,156), f2 right
    // after; both cover every set of the tiny cache.
    b.function("f1", [](FunctionScope& f) { f.code(128, "body1"); });
    b.function("f2", [](FunctionScope& f) { f.code(128, "body2"); });
    return b.build();
  }
  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.cache_line_size = 16;
    o.max_trace_size = 128;
    return o;
  }
  static cachesim::CacheConfig cache() {
    cachesim::CacheConfig c;
    c.size = 128;
    c.line_size = 16;
    c.associativity = 1;
    return c;
  }
};

TEST(ConflictGraph, PingPongProducesMutualEdges) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);

  const auto& blocks1 = p.program.function(FunctionId(1)).blocks();
  const auto& blocks2 = p.program.function(FunctionId(2)).blocks();
  const MemoryObjectId mo1 = p.tp.object_of(blocks1[0]);
  const MemoryObjectId mo2 = p.tp.object_of(blocks2[0]);

  // Each body misses on ~every iteration, attributed to the other body.
  EXPECT_GT(g.miss_weight(mo1, mo2), 500u);
  EXPECT_GT(g.miss_weight(mo2, mo1), 500u);
}

TEST(ConflictGraph, HitsPlusMissesEqualFetches) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    EXPECT_EQ(g.hits(mo) + g.total_misses(mo), g.fetches(mo));
  }
}

TEST(ConflictGraph, FetchesMatchProfile) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    total += g.fetches(MemoryObjectId(static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(total, p.exec.total_fetches);
}

TEST(ConflictGraph, ColdMissesBoundedByLineCount) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  std::uint64_t cold = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    cold += g.cold_misses(MemoryObjectId(static_cast<std::uint32_t>(i)));
  }
  // A line's first-ever miss is cold; there are span/line lines total.
  EXPECT_LE(cold, p.layout.span() / 16);
  EXPECT_GT(cold, 0u);
}

TEST(ConflictGraph, BigCacheHasNoConflicts) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  opt.cache.size = 8_KiB;  // everything fits
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.total_conflict_misses(), 0u);
}

TEST(ConflictGraph, NonConflictingLayoutNoEdges) {
  // Working set equals cache size: sequential bodies share no sets.
  ProgramBuilder b("fit");
  b.function("main", [](FunctionScope& f) {
    f.loop(100, [](FunctionScope& l) { l.call("f1"); });
  });
  b.function("f1", [](FunctionScope& f) { f.code(64, "body"); });
  const prog::Program program = b.build();
  const auto exec = trace::Executor::run(program);
  traceopt::TraceFormationOptions topt;
  topt.max_trace_size = 128;
  const auto tp = traceopt::form_traces(program, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  BuildOptions opt;
  opt.cache = PingPong::cache();  // 128 B: whole program ~128 B fits
  opt.cache.size = 512;
  const ConflictGraph g = build_conflict_graph(tp, layout, exec.walk, opt);
  EXPECT_EQ(g.total_conflict_misses(), 0u);
}

TEST(ConflictGraph, EdgesSortedAndQueryable) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  const auto& edges = g.edges();
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_TRUE(edges[i - 1].from < edges[i].from ||
                (edges[i - 1].from == edges[i].from &&
                 edges[i - 1].to < edges[i].to));
  }
  std::uint64_t via_out = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    for (const Edge& e :
         g.out_edges(MemoryObjectId(static_cast<std::uint32_t>(i)))) {
      via_out += e.misses;
    }
  }
  EXPECT_EQ(via_out, g.total_conflict_misses());
}

TEST(ConflictGraph, MissWeightZeroForAbsentEdge) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  // main's loop glue object vs itself-ish: query an arbitrary absent pair.
  const MemoryObjectId a(0);
  EXPECT_EQ(g.miss_weight(a, a), 0u);
}

TEST(ConflictGraph, DotExportContainsNodesAndEdges) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph g = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(ConflictGraph, DeterministicAcrossBuilds) {
  const PingPong p;
  BuildOptions opt;
  opt.cache = PingPong::cache();
  const ConflictGraph a = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  const ConflictGraph b = build_conflict_graph(p.tp, p.layout, p.exec.walk, opt);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].misses, b.edges()[i].misses);
  }
}

}  // namespace
}  // namespace casa::conflict

#include <gtest/gtest.h>

#include "casa/memsim/two_level.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::memsim {
namespace {

struct Rig {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;
  cachesim::CacheConfig l1, l2;
  TwoLevelEnergies energies;

  Rig()
      : program(workloads::make_adpcm()),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        layout(traceopt::layout_all(tp)),
        l1(workloads::paper_cache_for("adpcm")),
        l2(make_l2()),
        energies(TwoLevelEnergies::build(l1, l2, 128)) {}

  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 128;
    return o;
  }
  static cachesim::CacheConfig make_l2() {
    cachesim::CacheConfig c;
    c.size = 8_KiB;
    c.line_size = 32;
    c.associativity = 4;
    return c;
  }
};

TEST(TwoLevel, CounterIdentities) {
  const Rig rig;
  const std::vector<bool> none(rig.tp.object_count(), false);
  const TwoLevelReport r = simulate_spm_two_level(
      rig.tp, rig.layout, rig.exec.walk, none, rig.l1, rig.l2, rig.energies);
  const TwoLevelCounters& c = r.counters;
  EXPECT_EQ(c.total_fetches, rig.exec.total_fetches);
  EXPECT_EQ(c.total_fetches, c.spm_accesses + c.l1_hits + c.l1_misses);
  EXPECT_EQ(c.l1_misses, c.l2_hits + c.l2_misses);
}

TEST(TwoLevel, L2MissesAreSubsetOfL1Misses) {
  // The paper's §4 subset claim, verified literally.
  const Rig rig;
  const std::vector<bool> none(rig.tp.object_count(), false);
  const TwoLevelReport r = simulate_spm_two_level(
      rig.tp, rig.layout, rig.exec.walk, none, rig.l1, rig.l2, rig.energies);
  EXPECT_LE(r.counters.l2_misses, r.counters.l1_misses);
  EXPECT_GT(r.counters.l2_hits, 0u);  // the L2 actually absorbs traffic
}

TEST(TwoLevel, ReducingL1MissesReducesL2Traffic) {
  // Place the hottest object on the SPM: L1 misses drop, and because L2
  // accesses are exactly the L1 misses, L2 traffic drops with them.
  const Rig rig;
  const std::vector<bool> none(rig.tp.object_count(), false);
  const TwoLevelReport base = simulate_spm_two_level(
      rig.tp, rig.layout, rig.exec.walk, none, rig.l1, rig.l2, rig.energies);

  std::size_t hottest = 0;
  for (std::size_t i = 1; i < rig.tp.object_count(); ++i) {
    if (rig.tp.objects()[i].fetches > rig.tp.objects()[hottest].fetches) {
      hottest = i;
    }
  }
  std::vector<bool> on_spm(rig.tp.object_count(), false);
  on_spm[hottest] = true;
  const TwoLevelReport better = simulate_spm_two_level(
      rig.tp, rig.layout, rig.exec.walk, on_spm, rig.l1, rig.l2,
      rig.energies);
  EXPECT_LT(better.counters.l1_misses, base.counters.l1_misses);
  EXPECT_LE(better.counters.l2_hits + better.counters.l2_misses,
            base.counters.l2_hits + base.counters.l2_misses);
  EXPECT_LT(better.total_energy, base.total_energy);
}

TEST(TwoLevel, EnergyOrdering) {
  const Rig rig;
  const TwoLevelEnergies& e = rig.energies;
  EXPECT_GT(e.l1_hit, e.spm_access);
  EXPECT_GT(e.l1_miss_l2_hit, e.l1_hit);
  EXPECT_GT(e.l1_miss_l2_miss, e.l1_miss_l2_hit);
  // An L2 hit must be far cheaper than going off-chip.
  EXPECT_LT(e.l1_miss_l2_hit, 0.5 * e.l1_miss_l2_miss);
}

TEST(TwoLevel, ValidatesGeometry) {
  const Rig rig;
  const std::vector<bool> none(rig.tp.object_count(), false);
  cachesim::CacheConfig bad_l2 = rig.l2;
  bad_l2.size = 64;  // smaller than L1
  EXPECT_THROW(
      simulate_spm_two_level(rig.tp, rig.layout, rig.exec.walk, none, rig.l1,
                             bad_l2, rig.energies),
      PreconditionError);
}

TEST(TwoLevel, BigL2AbsorbsAlmostEverything) {
  // An L2 big enough to hold the whole program leaves only cold misses.
  const Rig rig;
  cachesim::CacheConfig huge = rig.l2;
  huge.size = 64_KiB;
  const std::vector<bool> none(rig.tp.object_count(), false);
  const TwoLevelReport r = simulate_spm_two_level(
      rig.tp, rig.layout, rig.exec.walk, none, rig.l1, huge, rig.energies);
  // Cold misses only: bounded by the number of L2 lines the image spans.
  EXPECT_LE(r.counters.l2_misses, rig.layout.span() / huge.line_size + 1);
}

}  // namespace
}  // namespace casa::memsim

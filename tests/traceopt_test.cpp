#include <gtest/gtest.h>

#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::traceopt {
namespace {

using prog::FunctionScope;
using prog::Program;
using prog::ProgramBuilder;

struct Pipeline {
  Program program;
  trace::ExecutionResult exec;

  explicit Pipeline(Program p)
      : program(std::move(p)), exec(trace::Executor::run(program)) {}

  TraceProgram form(TraceFormationOptions opt = {}) const {
    return form_traces(program, exec.profile, opt);
  }
};

Pipeline hot_chain() {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(100, [](FunctionScope& l) {
      l.code(32, "a").code(32, "b").code(32, "c");
    });
  });
  return Pipeline(b.build());
}

TEST(TraceFormation, EveryBlockAssignedExactlyOnce) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  std::vector<int> seen(p.program.block_count(), 0);
  for (const MemoryObject& mo : tp.objects()) {
    for (const BasicBlockId bb : mo.blocks) ++seen[bb.index()];
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(TraceFormation, HotFallthroughChainFused) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  const auto& blocks = p.program.function(p.program.entry()).blocks();
  // a, b, c all in one object (the loop body chain).
  EXPECT_EQ(tp.object_of(blocks[1]), tp.object_of(blocks[2]));
  EXPECT_EQ(tp.object_of(blocks[2]), tp.object_of(blocks[3]));
}

TEST(TraceFormation, PaddedToLineBoundary) {
  const Pipeline p = hot_chain();
  TraceFormationOptions opt;
  opt.cache_line_size = 16;
  const TraceProgram tp = p.form(opt);
  for (const MemoryObject& mo : tp.objects()) {
    EXPECT_EQ(mo.padded_size % 16, 0u);
    EXPECT_GE(mo.padded_size, mo.raw_size);
    EXPECT_LT(mo.padded_size - mo.raw_size, 16u);
  }
}

TEST(TraceFormation, MaxTraceSizeRespected) {
  const Pipeline p = hot_chain();
  TraceFormationOptions opt;
  opt.max_trace_size = 64;
  const TraceProgram tp = p.form(opt);
  for (const MemoryObject& mo : tp.objects()) {
    if (mo.blocks.size() > 1) {
      EXPECT_LE(mo.raw_size, 64u);
    }
  }
}

TEST(TraceFormation, OversizedSingleBlockBecomesOwnTrace) {
  ProgramBuilder b("big");
  b.function("main", [](FunctionScope& f) { f.code(256, "huge"); });
  const Pipeline p{b.build()};
  TraceFormationOptions opt;
  opt.max_trace_size = 64;
  const TraceProgram tp = p.form(opt);
  ASSERT_EQ(tp.object_count(), 1u);
  EXPECT_EQ(tp.objects()[0].raw_size, 256u);
}

TEST(TraceFormation, ExitJumpAddedAtCutFallthrough) {
  // Force a cut inside a hot fallthrough chain by a tiny max trace size.
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(10, [](FunctionScope& l) { l.code(60, "a").code(60, "b"); });
  });
  const Pipeline p{b.build()};
  TraceFormationOptions opt;
  opt.max_trace_size = 64;
  opt.cache_line_size = 16;
  const TraceProgram tp = p.form(opt);
  // Find the object holding "a": it was cut from its fallthrough successor,
  // so its raw size must include the 4-byte exit jump.
  const auto& blocks = p.program.function(p.program.entry()).blocks();
  const MemoryObject& mo_a = tp.object(tp.object_of(blocks[1]));
  ASSERT_EQ(mo_a.blocks.size(), 1u);
  EXPECT_EQ(mo_a.raw_size, 64u);  // 60 + exit jump
}

TEST(TraceFormation, ColdBlocksGroupTogether) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.code(16, "hot");
    f.if_then(0.0, [](FunctionScope& t) {
      t.code(32, "cold1").code(32, "cold2");
    });
    f.code(16, "hot2");
  });
  const Pipeline p{b.build()};
  const TraceProgram tp = p.form();
  const auto& blocks = p.program.function(p.program.entry()).blocks();
  // cold1 and cold2 (never executed) fuse.
  EXPECT_EQ(tp.object_of(blocks[2]), tp.object_of(blocks[3]));
}

TEST(TraceFormation, FuseRatioOneSplitsUnbiasedBranches) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.loop(1000, [](FunctionScope& l) {
      l.if_then(0.5, [](FunctionScope& t) { t.code(16, "rare"); });
      l.code(16, "always");
    });
  });
  const Pipeline p{b.build()};
  TraceFormationOptions strict;
  strict.fuse_ratio = 0.99;
  TraceFormationOptions loose;
  loose.fuse_ratio = 0.0;
  EXPECT_GT(p.form(strict).object_count(), p.form(loose).object_count());
}

TEST(TraceFormation, FetchesAggregatePerObject) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  std::uint64_t total = 0;
  for (const MemoryObject& mo : tp.objects()) total += mo.fetches;
  EXPECT_EQ(total, p.exec.total_fetches);
}

TEST(TraceFormation, BlockOffsetsAreSequentialWithinObject) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  for (const MemoryObject& mo : tp.objects()) {
    Bytes expected = 0;
    for (const BasicBlockId bb : mo.blocks) {
      EXPECT_EQ(tp.block_offset(bb), expected);
      expected += p.program.block(bb).size;
    }
  }
}

TEST(TraceFormation, TracesNeverCrossFunctions) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.code(16, "m");
    f.call("helper");
  });
  b.function("helper", [](FunctionScope& f) { f.code(16, "h"); });
  const Pipeline p{b.build()};
  const TraceProgram tp = p.form();
  for (const MemoryObject& mo : tp.objects()) {
    for (const BasicBlockId bb : mo.blocks) {
      EXPECT_EQ(p.program.block(bb).function, mo.function);
    }
  }
}

// ----------------------------------------------------------------- Layout ---

TEST(Layout, AllObjectsPlacedContiguously) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  const Layout layout = layout_all(tp);
  Addr cursor = 0;
  for (const MemoryObject& mo : tp.objects()) {
    EXPECT_EQ(layout.object_base(mo.id), cursor);
    cursor += mo.padded_size;
  }
  EXPECT_EQ(layout.span(), tp.padded_code_size());
}

TEST(Layout, BlockAddressesWithinObject) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  const Layout layout = layout_all(tp);
  for (const MemoryObject& mo : tp.objects()) {
    for (const BasicBlockId bb : mo.blocks) {
      const Addr a = layout.block_addr(bb);
      EXPECT_GE(a, layout.object_base(mo.id));
      EXPECT_LT(a, layout.object_base(mo.id) + mo.raw_size);
    }
  }
}

TEST(Layout, ExclusionCompacts) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  std::vector<bool> excluded(tp.object_count(), false);
  excluded[0] = true;
  const Layout layout = layout_excluding(tp, excluded);
  EXPECT_FALSE(layout.placed(MemoryObjectId(0)));
  EXPECT_EQ(layout.span(),
            tp.padded_code_size() - tp.objects()[0].padded_size);
  if (tp.object_count() > 1) {
    EXPECT_EQ(layout.object_base(MemoryObjectId(1)), 0u);
  }
}

TEST(Layout, QueryingUnplacedObjectThrows) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  std::vector<bool> excluded(tp.object_count(), false);
  excluded[0] = true;
  const Layout layout = layout_excluding(tp, excluded);
  EXPECT_THROW(layout.object_base(MemoryObjectId(0)), PreconditionError);
}

TEST(Layout, NonZeroBase) {
  const Pipeline p = hot_chain();
  const TraceProgram tp = p.form();
  const Layout layout = layout_all(tp, 0x8000);
  EXPECT_EQ(layout.object_base(MemoryObjectId(0)), 0x8000u);
}

TEST(Layout, LineAlignmentPreserved) {
  const Pipeline p = hot_chain();
  TraceFormationOptions opt;
  opt.cache_line_size = 16;
  const TraceProgram tp = p.form(opt);
  const Layout layout = layout_all(tp);
  for (const MemoryObject& mo : tp.objects()) {
    EXPECT_EQ(layout.object_base(mo.id) % 16, 0u);
  }
}

}  // namespace
}  // namespace casa::traceopt

#include <gtest/gtest.h>

#include "casa/data/data_sim.hpp"
#include "casa/data/unified_alloc.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::data {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

cachesim::CacheConfig small_dcache() {
  cachesim::CacheConfig c;
  c.size = 128;
  c.line_size = 16;
  return c;
}

struct Rig {
  prog::Program program;
  trace::ExecutionResult exec;
  DataSpec spec;

  Rig() : program(make()), exec(trace::Executor::run(program)) {
    const auto fn = [&](const char* n) {
      for (const auto& f : program.functions()) {
        if (f.name() == n) return f.id();
      }
      throw PreconditionError("no fn");
    };
    const auto a = spec.add_object("array_a", 256);
    const auto b = spec.add_object("array_b", 256);
    const auto s = spec.add_object("scalars", 16);
    spec.bind(a, fn("work1"), 0.5);
    spec.bind(b, fn("work2"), 0.5);
    spec.bind(s, fn("work1"), 0.25, /*sequential=*/false);
  }

  static prog::Program make() {
    ProgramBuilder b("d");
    b.function("main", [](FunctionScope& f) {
      f.loop(1000, [](FunctionScope& l) {
        l.call("work1");
        l.call("work2");
      });
    });
    b.function("work1", [](FunctionScope& f) { f.code(64, "w1"); });
    b.function("work2", [](FunctionScope& f) { f.code(64, "w2"); });
    return b.build();
  }
};

TEST(DataSpec, ValidatesInputs) {
  DataSpec s;
  EXPECT_THROW(s.add_object("x", 0), PreconditionError);
  EXPECT_THROW(s.add_object("x", 10), PreconditionError);
  const auto a = s.add_object("ok", 64);
  EXPECT_THROW(s.bind(a + 1, FunctionId(0), 0.5), PreconditionError);
  EXPECT_THROW(s.bind(a, FunctionId(0), 0.0), PreconditionError);
  s.bind(a, FunctionId(0), 0.5);
  EXPECT_EQ(s.total_size(), 64u);
}

TEST(DataSim, AccessCountsTrackBindingRates) {
  const Rig rig;
  const DataProfile prof = profile_data(rig.program, rig.exec.walk, rig.spec,
                                        small_dcache());
  // work1 executes 1000 times x 16 words x 0.5 = ~8000 accesses to array_a.
  EXPECT_NEAR(static_cast<double>(prof.accesses[0]), 8000.0, 80.0);
  EXPECT_NEAR(static_cast<double>(prof.accesses[1]), 8000.0, 80.0);
  EXPECT_NEAR(static_cast<double>(prof.accesses[2]), 4000.0, 40.0);
  EXPECT_EQ(prof.total_accesses,
            prof.accesses[0] + prof.accesses[1] + prof.accesses[2]);
}

TEST(DataSim, StreamingArraysConflictInSmallDCache) {
  // Two 256 B arrays streamed alternately through a 128 B D-cache must
  // evict each other.
  const Rig rig;
  const DataProfile prof = profile_data(rig.program, rig.exec.walk, rig.spec,
                                        small_dcache());
  EXPECT_GT(prof.graph.miss_weight(MemoryObjectId(0), MemoryObjectId(1)) +
                prof.graph.miss_weight(MemoryObjectId(1), MemoryObjectId(0)),
            1000u);
}

TEST(DataSim, HitsPlusMissesEqualAccesses) {
  const Rig rig;
  const DataProfile prof = profile_data(rig.program, rig.exec.walk, rig.spec,
                                        small_dcache());
  for (std::size_t i = 0; i < rig.spec.objects().size(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    EXPECT_EQ(prof.graph.hits(mo) + prof.graph.total_misses(mo),
              prof.accesses[i]);
  }
}

TEST(DataSim, SimulationMatchesProfileWhenNothingPlaced) {
  const Rig rig;
  const DataProfile prof = profile_data(rig.program, rig.exec.walk, rig.spec,
                                        small_dcache());
  const DataEnergy e = DataEnergy::build(small_dcache(), 256);
  const std::vector<bool> none(rig.spec.objects().size(), false);
  const DataSimReport sim = simulate_data(rig.program, rig.exec.walk,
                                          rig.spec, none, small_dcache(), e);
  EXPECT_EQ(sim.total_accesses, prof.total_accesses);
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < rig.spec.objects().size(); ++i) {
    misses += prof.graph.total_misses(MemoryObjectId((std::uint32_t)i));
  }
  EXPECT_EQ(sim.dcache_misses, misses);
}

TEST(DataSim, PlacingArrayKillsItsTraffic) {
  const Rig rig;
  const DataEnergy e = DataEnergy::build(small_dcache(), 256);
  std::vector<bool> on_spm(rig.spec.objects().size(), false);
  on_spm[0] = true;
  const DataSimReport sim = simulate_data(rig.program, rig.exec.walk,
                                          rig.spec, on_spm, small_dcache(), e);
  EXPECT_GT(sim.spm_accesses, 0u);
  const std::vector<bool> none(rig.spec.objects().size(), false);
  const DataSimReport base = simulate_data(rig.program, rig.exec.walk,
                                           rig.spec, none, small_dcache(), e);
  EXPECT_LT(sim.total_energy, base.total_energy);
  EXPECT_LT(sim.dcache_misses, base.dcache_misses);
}

TEST(DataSim, DeterministicAcrossRuns) {
  const Rig rig;
  const DataProfile a = profile_data(rig.program, rig.exec.walk, rig.spec,
                                     small_dcache());
  const DataProfile b = profile_data(rig.program, rig.exec.walk, rig.spec,
                                     small_dcache());
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
}

TEST(DataSpecs, BundledWorkloadsHaveSpecs) {
  for (const char* name : {"adpcm", "g721", "gsm"}) {
    const prog::Program p = workloads::by_name(name);
    const DataSpec spec = data_spec_for(p, name);
    EXPECT_GE(spec.objects().size(), 4u) << name;
    EXPECT_GE(spec.bindings().size(), 4u) << name;
  }
  const prog::Program p = workloads::make_epic();
  EXPECT_THROW(data_spec_for(p, "epic"), PreconditionError);
}

// -------------------------------------------------------------- unified ---

UnifiedProblem unified_problem(const conflict::ConflictGraph& code,
                               const conflict::ConflictGraph& dat) {
  UnifiedProblem p;
  p.code_graph = &code;
  p.code_sizes = {64, 64};
  p.data_graph = &dat;
  p.data_sizes = {64, 64};
  p.capacity = 128;
  p.e_icache_hit = 1.0;
  p.e_icache_miss = 30.0;
  p.e_dcache_hit = 1.2;
  p.e_dcache_miss = 32.0;
  p.e_spm = 0.4;
  return p;
}

conflict::ConflictGraph two_node_graph(std::uint64_t f0, std::uint64_t f1,
                                       std::uint64_t mutual) {
  std::vector<conflict::Edge> edges;
  if (mutual > 0) {
    edges.push_back({MemoryObjectId(0), MemoryObjectId(1), mutual});
    edges.push_back({MemoryObjectId(1), MemoryObjectId(0), mutual});
  }
  return conflict::ConflictGraph(2, {f0, f1}, {0, 0},
                                 {f0 - mutual, f1 - mutual},
                                 std::move(edges));
}

TEST(Unified, PrefersConflictHeavyDataOverHotCode) {
  // Code: hot but conflict-free. Data: cooler but thrashing pair. With room
  // for two objects, cache-aware allocation takes the data pair's endpoint
  // + hottest code; Steinke takes the two hottest by linear value.
  const auto code = two_node_graph(10000, 9000, 0);
  const auto dat = two_node_graph(3000, 2900, 2500);
  const UnifiedProblem p = unified_problem(code, dat);

  const UnifiedResult aware = allocate_unified(p);
  const UnifiedResult blind = allocate_unified_steinke(p);

  // Cache-aware must cover the data conflict.
  EXPECT_TRUE(aware.data_on_spm[0] || aware.data_on_spm[1]);
  // Conflict-blind picks the two hottest (both code).
  EXPECT_TRUE(blind.code_on_spm[0]);
  EXPECT_TRUE(blind.code_on_spm[1]);
  EXPECT_GT(aware.predicted_saving, blind.predicted_saving);
}

TEST(Unified, CapacityShared) {
  const auto code = two_node_graph(10000, 9000, 0);
  const auto dat = two_node_graph(8000, 7000, 0);
  UnifiedProblem p = unified_problem(code, dat);
  p.capacity = 128;
  const UnifiedResult r = allocate_unified(p);
  EXPECT_LE(r.used_bytes, p.capacity);
  int placed = 0;
  for (const bool b : r.code_on_spm) placed += b;
  for (const bool b : r.data_on_spm) placed += b;
  EXPECT_EQ(placed, 2);
}

TEST(Unified, RestrictedVariantsRespectSides) {
  const auto code = two_node_graph(10000, 9000, 0);
  const auto dat = two_node_graph(8000, 7000, 0);
  const UnifiedProblem p = unified_problem(code, dat);
  const UnifiedResult c = allocate_code_only(p);
  for (const bool b : c.data_on_spm) EXPECT_FALSE(b);
  const UnifiedResult d = allocate_data_only(p);
  for (const bool b : d.code_on_spm) EXPECT_FALSE(b);
  // Unified dominates both restrictions on the model objective.
  const UnifiedResult u = allocate_unified(p);
  EXPECT_GE(u.predicted_saving, c.predicted_saving - 1e-9);
  EXPECT_GE(u.predicted_saving, d.predicted_saving - 1e-9);
}

TEST(Unified, ValidationCatchesBadEnergies) {
  const auto code = two_node_graph(100, 100, 0);
  const auto dat = two_node_graph(100, 100, 0);
  UnifiedProblem p = unified_problem(code, dat);
  p.e_spm = 5.0;
  EXPECT_THROW(allocate_unified(p), PreconditionError);
}

}  // namespace
}  // namespace casa::data

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "casa/trace/executor.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::workloads {
namespace {

struct SizeBand {
  const char* name;
  Bytes lo;
  Bytes hi;
};

// Paper footprints: adpcm ~1 kB, g721 ~4.7 kB, mpeg ~19.5 kB (±15%).
class WorkloadShapeTest : public ::testing::TestWithParam<SizeBand> {};

TEST_P(WorkloadShapeTest, CodeSizeInPaperBand) {
  const SizeBand band = GetParam();
  const prog::Program p = by_name(band.name);
  EXPECT_GE(p.code_size(), band.lo) << band.name;
  EXPECT_LE(p.code_size(), band.hi) << band.name;
}

TEST_P(WorkloadShapeTest, ExecutesWithNontrivialDynamicWeight) {
  const SizeBand band = GetParam();
  const prog::Program p = by_name(band.name);
  const trace::ExecutionResult r = trace::Executor::run(p);
  EXPECT_GT(r.total_fetches, 100000u) << band.name;
  EXPECT_GT(r.total_blocks, 1000u) << band.name;
}

TEST_P(WorkloadShapeTest, DeterministicAcrossConstructions) {
  const SizeBand band = GetParam();
  const prog::Program a = by_name(band.name);
  const prog::Program b = by_name(band.name);
  EXPECT_EQ(a.code_size(), b.code_size());
  EXPECT_EQ(a.block_count(), b.block_count());
  const auto ra = trace::Executor::run(a);
  const auto rb = trace::Executor::run(b);
  EXPECT_EQ(ra.total_fetches, rb.total_fetches);
  EXPECT_EQ(ra.walk.seq.size(), rb.walk.seq.size());
}

TEST_P(WorkloadShapeTest, HasLoopsAndMultipleFunctions) {
  const SizeBand band = GetParam();
  const prog::Program p = by_name(band.name);
  EXPECT_GE(p.function_count(), 5u) << band.name;
  EXPECT_GE(p.loop_regions().size(), 2u) << band.name;
}

INSTANTIATE_TEST_SUITE_P(
    Bands, WorkloadShapeTest,
    ::testing::Values(SizeBand{"adpcm", 850, 1200},
                      SizeBand{"g721", 4000, 5400},
                      SizeBand{"mpeg", 16500, 22500},
                      SizeBand{"epic", 2600, 3800},
                      SizeBand{"pegwit", 5800, 8000},
                      SizeBand{"gsm", 5100, 7000},
                      SizeBand{"jpeg", 9300, 12700}),
    [](const ::testing::TestParamInfo<SizeBand>& info) {
      return info.param.name;
    });

TEST(Workloads, NamesListsEverything) {
  const auto all = names();
  EXPECT_EQ(all.size(), 7u);
  for (const auto& n : all) {
    EXPECT_NO_THROW(by_name(n));
    EXPECT_NO_THROW(paper_cache_for(n));
    EXPECT_FALSE(paper_spm_sizes_for(n).empty());
  }
}

TEST(Workloads, UnknownNameRejected) {
  EXPECT_THROW(by_name("quake"), PreconditionError);
  EXPECT_THROW(paper_cache_for("quake"), PreconditionError);
  EXPECT_THROW(paper_spm_sizes_for("quake"), PreconditionError);
}

TEST(Workloads, PaperCacheConfigurations) {
  EXPECT_EQ(paper_cache_for("adpcm").size, 128u);
  EXPECT_EQ(paper_cache_for("g721").size, 1024u);
  EXPECT_EQ(paper_cache_for("mpeg").size, 2048u);
  for (const auto& n : names()) {
    const auto cfg = paper_cache_for(n);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.associativity, 1u);  // paper: direct mapped
    EXPECT_EQ(cfg.line_size, 16u);
  }
}

TEST(Workloads, PaperSpmSweepsMatchTable1) {
  EXPECT_EQ(paper_spm_sizes_for("adpcm"),
            (std::vector<Bytes>{64, 128, 256}));
  EXPECT_EQ(paper_spm_sizes_for("g721"),
            (std::vector<Bytes>{128, 256, 512, 1024}));
  EXPECT_EQ(paper_spm_sizes_for("mpeg"),
            (std::vector<Bytes>{128, 256, 512, 1024}));
}

TEST(Workloads, HotCodeConcentration) {
  // The paper's premise: a small fraction of the code takes most fetches.
  for (const char* name : {"adpcm", "g721", "mpeg"}) {
    const prog::Program p = by_name(name);
    const auto r = trace::Executor::run(p);
    std::vector<std::pair<std::uint64_t, Bytes>> per_block;
    for (const auto& blk : p.blocks()) {
      per_block.emplace_back(r.profile.fetches(p, blk.id), blk.size);
    }
    std::sort(per_block.rbegin(), per_block.rend());
    Bytes bytes = 0;
    std::uint64_t covered = 0;
    for (const auto& [f, sz] : per_block) {
      if (bytes > p.code_size() / 3) break;
      bytes += sz;
      covered += f;
    }
    EXPECT_GT(static_cast<double>(covered) /
                  static_cast<double>(r.total_fetches),
              0.75)
        << name << ": hottest third of code must take >75% of fetches";
  }
}

TEST(Workloads, MpegBlocksAreCompilerSized) {
  const prog::Program p = make_mpeg();
  for (const auto& blk : p.blocks()) {
    EXPECT_LE(blk.size, 128u);  // straightline() splits at <= 96 + controls
    EXPECT_EQ(blk.size % kWordBytes, 0u);
  }
}

}  // namespace
}  // namespace casa::workloads

#include <gtest/gtest.h>

#include "casa/core/multi_spm.hpp"
#include "casa/support/error.hpp"

namespace casa::core {
namespace {

conflict::ConflictGraph graph3() {
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(0), MemoryObjectId(1), 40},
      {MemoryObjectId(1), MemoryObjectId(0), 40}};
  return conflict::ConflictGraph(3, {1000, 900, 100}, {0, 0, 0},
                                 {960, 860, 100}, std::move(edges));
}

MultiSpmProblem problem(const conflict::ConflictGraph& g) {
  MultiSpmProblem p;
  p.graph = &g;
  p.sizes = {40, 40, 40};
  p.capacities = {40, 40};
  p.e_spm = {0.3, 0.5};
  p.e_cache_hit = 1.0;
  p.e_cache_miss = 25.0;
  return p;
}

TEST(MultiSpm, AssignsAtMostOnePadPerObject) {
  const auto g = graph3();
  const MultiSpmResult r = allocate_multi_spm(problem(g));
  EXPECT_TRUE(r.exact);
  for (const int pad : r.pad_of) {
    EXPECT_GE(pad, -1);
    EXPECT_LE(pad, 1);
  }
}

TEST(MultiSpm, RespectsPerPadCapacity) {
  const auto g = graph3();
  const MultiSpmProblem p = problem(g);
  const MultiSpmResult r = allocate_multi_spm(p);
  ASSERT_EQ(r.used_bytes.size(), 2u);
  EXPECT_LE(r.used_bytes[0], p.capacities[0]);
  EXPECT_LE(r.used_bytes[1], p.capacities[1]);
}

TEST(MultiSpm, UsesBothPadsWhenBeneficial) {
  const auto g = graph3();
  const MultiSpmResult r = allocate_multi_spm(problem(g));
  // Two hot conflicting objects, two pads of one-object size each: the
  // optimum parks both (kills the conflict and saves fetch energy).
  int placed = 0;
  for (const int pad : r.pad_of) placed += pad >= 0 ? 1 : 0;
  EXPECT_EQ(placed, 2);
  EXPECT_NE(r.pad_of[0], -1);
  EXPECT_NE(r.pad_of[1], -1);
}

TEST(MultiSpm, HottestObjectGetsCheapestPad) {
  const auto g = graph3();
  const MultiSpmResult r = allocate_multi_spm(problem(g));
  // Object 0 has the most fetches; pad 0 is the cheaper one.
  EXPECT_EQ(r.pad_of[0], 0);
  EXPECT_EQ(r.pad_of[1], 1);
}

TEST(MultiSpm, OversizedObjectStaysCached) {
  const auto g = graph3();
  MultiSpmProblem p = problem(g);
  p.sizes = {80, 40, 40};  // object 0 fits no pad
  const MultiSpmResult r = allocate_multi_spm(p);
  EXPECT_EQ(r.pad_of[0], -1);
}

TEST(MultiSpm, SinglePadReducesToClassicCasa) {
  const auto g = graph3();
  MultiSpmProblem p = problem(g);
  p.capacities = {80};
  p.e_spm = {0.4};
  const MultiSpmResult r = allocate_multi_spm(p);
  int placed = 0;
  for (const int pad : r.pad_of) placed += pad >= 0 ? 1 : 0;
  EXPECT_EQ(placed, 2);  // the two hot objects fill 80 bytes
}

TEST(MultiSpm, ValidationCatchesMismatches) {
  const auto g = graph3();
  MultiSpmProblem p = problem(g);
  p.e_spm = {0.3};  // size mismatch with capacities
  EXPECT_THROW(allocate_multi_spm(p), PreconditionError);
  p = problem(g);
  p.e_spm = {0.3, 2.0};  // pad worse than cache
  EXPECT_THROW(allocate_multi_spm(p), PreconditionError);
}

}  // namespace
}  // namespace casa::core

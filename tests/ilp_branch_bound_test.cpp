#include <gtest/gtest.h>

#include "casa/ilp/branch_bound.hpp"
#include "casa/ilp/model.hpp"
#include "casa/support/rng.hpp"

namespace casa::ilp {
namespace {

/// Brute force over all binary assignments (for small var counts).
double brute_force_knapsack(const std::vector<double>& profit,
                            const std::vector<double>& weight, double cap) {
  const std::size_t n = profit.size();
  double best = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    double p = 0, w = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) {
        p += profit[j];
        w += weight[j];
      }
    }
    if (w <= cap) best = std::max(best, p);
  }
  return best;
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  const VarId x = m.add_continuous("x", 0, 4);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 2.0));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-7);
}

TEST(BranchAndBound, IntegralityEnforced) {
  // LP relaxation puts x at 0.5; ILP must pick 0 or 1.
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint("c", LinExpr().add(x, 2.0), Rel::kLessEq, 1.0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1.0));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 0.0, 1e-9);
}

TEST(BranchAndBound, SmallKnapsackExact) {
  // Classic: weights 2,3,4,5 values 3,4,5,6 cap 5 -> best = 7 (2+3).
  Model m;
  std::vector<VarId> x;
  const double w[] = {2, 3, 4, 5}, v[] = {3, 4, 5, 6};
  LinExpr cap, obj;
  for (int j = 0; j < 4; ++j) {
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], w[j]);
    obj.add(x[j], v[j]);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 5);
  m.set_objective(Sense::kMaximize, std::move(obj));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
  EXPECT_TRUE(s.value_as_bool(x[0]));
  EXPECT_TRUE(s.value_as_bool(x[1]));
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("c1", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 2);
  m.add_constraint("c2", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 1);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1));
  EXPECT_EQ(BranchAndBound().solve(m).status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, MinimizationWithCover) {
  // min x+y+z s.t. pairwise covers -> vertex cover of a triangle = 2.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  const VarId z = m.add_binary("z");
  m.add_constraint("xy", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 1);
  m.add_constraint("yz", LinExpr().add(y, 1).add(z, 1), Rel::kGreaterEq, 1);
  m.add_constraint("xz", LinExpr().add(x, 1).add(z, 1), Rel::kGreaterEq, 1);
  m.set_objective(Sense::kMinimize,
                  LinExpr().add(x, 1).add(y, 1).add(z, 1));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // Binary gate y opens capacity for continuous x: max x s.t. x <= 3y.
  Model m;
  const VarId x = m.add_continuous("x", 0, 10);
  const VarId y = m.add_binary("y");
  m.add_constraint("gate", LinExpr().add(x, 1).add(y, -3), Rel::kLessEq, 0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, -0.5));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-7);
  EXPECT_TRUE(s.value_as_bool(y));
}

TEST(BranchAndBound, NodeLimitReturnsLimitStatus) {
  Model m;
  Rng rng(5);
  LinExpr cap, obj;
  std::vector<VarId> x;
  for (int j = 0; j < 18; ++j) {
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], 3.0 + rng.next_unit());
    obj.add(x[j], 1.0 + rng.next_unit());
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 30);
  m.set_objective(Sense::kMaximize, std::move(obj));
  BranchAndBoundOptions opt;
  opt.max_nodes = 2;
  const Solution s = BranchAndBound(opt).solve(m);
  EXPECT_NE(s.status, SolveStatus::kOptimal);
}

TEST(BranchAndBound, BranchPriorityStillExact) {
  Model m;
  std::vector<VarId> x;
  const double w[] = {2, 3, 4, 5}, v[] = {3, 4, 5, 6};
  LinExpr cap, obj;
  for (int j = 0; j < 4; ++j) {
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], w[j]);
    obj.add(x[j], v[j]);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 7);
  m.set_objective(Sense::kMaximize, std::move(obj));
  BranchAndBoundOptions opt;
  opt.branch_priority = {0, 3, 1, 2};
  const Solution s = BranchAndBound(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-7);  // items 2+5 -> 3+6
}

/// Random knapsacks cross-checked against brute force.
class RandomMipTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMipTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const int n = 10;
  std::vector<double> profit(n), weight(n);
  Model m;
  std::vector<VarId> x;
  LinExpr cap, obj;
  for (int j = 0; j < n; ++j) {
    profit[j] = 1.0 + rng.next_unit() * 9.0;
    weight[j] = 1.0 + rng.next_unit() * 9.0;
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], weight[j]);
    obj.add(x[j], profit[j]);
  }
  const double capacity = 15.0 + rng.next_unit() * 10.0;
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, capacity);
  m.set_objective(Sense::kMaximize, std::move(obj));

  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, brute_force_knapsack(profit, weight, capacity),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace casa::ilp

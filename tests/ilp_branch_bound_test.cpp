#include <gtest/gtest.h>

#include "casa/ilp/branch_bound.hpp"
#include "casa/ilp/model.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/support/rng.hpp"

namespace casa::ilp {
namespace {

/// Brute force over all binary assignments (for small var counts).
double brute_force_knapsack(const std::vector<double>& profit,
                            const std::vector<double>& weight, double cap) {
  const std::size_t n = profit.size();
  double best = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    double p = 0, w = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) {
        p += profit[j];
        w += weight[j];
      }
    }
    if (w <= cap) best = std::max(best, p);
  }
  return best;
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  const VarId x = m.add_continuous("x", 0, 4);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 2.0));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-7);
}

TEST(BranchAndBound, IntegralityEnforced) {
  // LP relaxation puts x at 0.5; ILP must pick 0 or 1.
  Model m;
  const VarId x = m.add_binary("x");
  m.add_constraint("c", LinExpr().add(x, 2.0), Rel::kLessEq, 1.0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1.0));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.value(x), 0.0, 1e-9);
}

TEST(BranchAndBound, SmallKnapsackExact) {
  // Classic: weights 2,3,4,5 values 3,4,5,6 cap 5 -> best = 7 (2+3).
  Model m;
  std::vector<VarId> x;
  const double w[] = {2, 3, 4, 5}, v[] = {3, 4, 5, 6};
  LinExpr cap, obj;
  for (int j = 0; j < 4; ++j) {
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], w[j]);
    obj.add(x[j], v[j]);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 5);
  m.set_objective(Sense::kMaximize, std::move(obj));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
  EXPECT_TRUE(s.value_as_bool(x[0]));
  EXPECT_TRUE(s.value_as_bool(x[1]));
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  m.add_constraint("c1", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 2);
  m.add_constraint("c2", LinExpr().add(x, 1).add(y, 1), Rel::kLessEq, 1);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1));
  EXPECT_EQ(BranchAndBound().solve(m).status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, MinimizationWithCover) {
  // min x+y+z s.t. pairwise covers -> vertex cover of a triangle = 2.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  const VarId z = m.add_binary("z");
  m.add_constraint("xy", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 1);
  m.add_constraint("yz", LinExpr().add(y, 1).add(z, 1), Rel::kGreaterEq, 1);
  m.add_constraint("xz", LinExpr().add(x, 1).add(z, 1), Rel::kGreaterEq, 1);
  m.set_objective(Sense::kMinimize,
                  LinExpr().add(x, 1).add(y, 1).add(z, 1));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // Binary gate y opens capacity for continuous x: max x s.t. x <= 3y.
  Model m;
  const VarId x = m.add_continuous("x", 0, 10);
  const VarId y = m.add_binary("y");
  m.add_constraint("gate", LinExpr().add(x, 1).add(y, -3), Rel::kLessEq, 0);
  m.set_objective(Sense::kMaximize, LinExpr().add(x, 1).add(y, -0.5));
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-7);
  EXPECT_TRUE(s.value_as_bool(y));
}

TEST(BranchAndBound, NodeLimitReturnsLimitStatus) {
  Model m;
  Rng rng(5);
  LinExpr cap, obj;
  std::vector<VarId> x;
  for (int j = 0; j < 18; ++j) {
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], 3.0 + rng.next_unit());
    obj.add(x[j], 1.0 + rng.next_unit());
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 30);
  m.set_objective(Sense::kMaximize, std::move(obj));
  BranchAndBoundOptions opt;
  opt.max_nodes = 2;
  const Solution s = BranchAndBound(opt).solve(m);
  EXPECT_NE(s.status, SolveStatus::kOptimal);
}

TEST(BranchAndBound, BranchPriorityStillExact) {
  Model m;
  std::vector<VarId> x;
  const double w[] = {2, 3, 4, 5}, v[] = {3, 4, 5, 6};
  LinExpr cap, obj;
  for (int j = 0; j < 4; ++j) {
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], w[j]);
    obj.add(x[j], v[j]);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 7);
  m.set_objective(Sense::kMaximize, std::move(obj));
  BranchAndBoundOptions opt;
  opt.branch_priority = {0, 3, 1, 2};
  const Solution s = BranchAndBound(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-7);  // items 2+5 -> 3+6
}

/// Random knapsacks cross-checked against brute force.
class RandomMipTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMipTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const int n = 10;
  std::vector<double> profit(n), weight(n);
  Model m;
  std::vector<VarId> x;
  LinExpr cap, obj;
  for (int j = 0; j < n; ++j) {
    profit[j] = 1.0 + rng.next_unit() * 9.0;
    weight[j] = 1.0 + rng.next_unit() * 9.0;
    x.push_back(m.add_binary("x" + std::to_string(j)));
    cap.add(x[j], weight[j]);
    obj.add(x[j], profit[j]);
  }
  const double capacity = 15.0 + rng.next_unit() * 10.0;
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, capacity);
  m.set_objective(Sense::kMaximize, std::move(obj));

  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, brute_force_knapsack(profit, weight, capacity),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipTest, ::testing::Range(0, 15));

// ---------------------------------------------------------------------------
// Truncation status contract: a cut-off search reports kLimit, never a
// (false) completeness claim. See docs/solver.md.
// ---------------------------------------------------------------------------

/// Feasible knapsack whose root LP rounds to an infeasible point, so the
/// rounded-root warm candidate cannot seed an incumbent: eight items of
/// weight 2 under capacity 9.2 leave the fractional item at 0.6, which
/// rounds up and overflows the capacity row.
Model rounding_trap() {
  Model m;
  LinExpr cap, obj;
  for (int j = 0; j < 8; ++j) {
    cap.add(m.add_binary("x" + std::to_string(j)), 2.0);
    obj.add(VarId(static_cast<std::uint32_t>(j)), 1.0);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 9.2);
  m.set_objective(Sense::kMaximize, std::move(obj));
  return m;
}

TEST(BranchAndBoundTruncation, NoIncumbentReturnsLimitWithEmptySolution) {
  const Model m = rounding_trap();
  for (const std::uint64_t budget : {1u, 2u, 3u}) {
    for (const bool warm : {false, true}) {
      BranchAndBoundOptions opt;
      opt.max_nodes = budget;
      opt.warm_start = warm;
      const Solution s = BranchAndBound(opt).solve(m);
      // The instance is feasible, so kInfeasible would be a lie; the budget
      // is too small to finish, so kOptimal would be one too.
      EXPECT_EQ(s.status, SolveStatus::kLimit)
          << "budget=" << budget << " warm=" << warm;
      EXPECT_TRUE(s.values.empty());
    }
  }
}

TEST(BranchAndBoundTruncation, SameInstanceSolvesWithRealBudget) {
  const Model m = rounding_trap();
  const Solution s = BranchAndBound().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);  // four items of weight 2 fit in 9.2
}

TEST(BranchAndBoundTruncation, WarmHintSurvivesTruncationAsIncumbent) {
  const Model m = rounding_trap();
  BranchAndBoundOptions opt;
  opt.max_nodes = 1;
  opt.warm_hint.assign(m.var_count(), 0.0);  // all-out: feasible, profit 0
  const Solution s = BranchAndBound(opt).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kLimit);
  ASSERT_EQ(s.values.size(), m.var_count());
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(BranchAndBoundTruncation, RootLpIterationLimitPropagatesAsLimit) {
  const Model m = rounding_trap();
  BranchAndBoundOptions opt;
  opt.warm_start = false;
  opt.lp.max_iters = 1;      // root LP cannot finish...
  opt.lp_retry_factor = 1.0; // ...and the retry budget is no bigger
  const Solution s = BranchAndBound(opt).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kLimit);
  EXPECT_TRUE(s.values.empty());
}

TEST(BranchAndBoundTruncation, LpIterationLimitRetriedWithRaisedBudget) {
  // A >= system needs phase-1 pivots, so one iteration is never enough; the
  // 1000x retry budget is. The search must stay exact and count retries.
  Model m;
  const VarId x = m.add_binary("x");
  const VarId y = m.add_binary("y");
  const VarId z = m.add_binary("z");
  m.add_constraint("xy", LinExpr().add(x, 1).add(y, 1), Rel::kGreaterEq, 1);
  m.add_constraint("yz", LinExpr().add(y, 1).add(z, 1), Rel::kGreaterEq, 1);
  m.add_constraint("xz", LinExpr().add(x, 1).add(z, 1), Rel::kGreaterEq, 1);
  m.set_objective(Sense::kMinimize, LinExpr().add(x, 1).add(y, 1).add(z, 1));
  BranchAndBoundOptions opt;
  opt.lp.max_iters = 1;
  opt.lp_retry_factor = 1000.0;
  BranchAndBound solver(opt);
  const Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
  EXPECT_GE(solver.last_stats().lp_limit_retries, 1u);
}

// ---------------------------------------------------------------------------
// Warm start and reduced-cost fixing.
// ---------------------------------------------------------------------------

TEST(BranchAndBoundWarmStart, ValidHintSeedsIncumbent) {
  Model m = rounding_trap();
  BranchAndBoundOptions opt;
  opt.warm_hint = {1, 1, 1, 1, 0, 0, 0, 0};  // four items: feasible, optimal
  BranchAndBound solver(opt);
  const Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
  EXPECT_TRUE(solver.last_stats().warm_start_used);
  EXPECT_GE(solver.last_stats().root_gap, 0.0);
}

TEST(BranchAndBoundWarmStart, InfeasibleHintIsIgnored) {
  Model m = rounding_trap();
  BranchAndBoundOptions opt;
  opt.warm_hint.assign(m.var_count(), 1.0);  // violates the capacity row
  const Solution s = BranchAndBound(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(BranchAndBoundWarmStart, WrongSizeHintIsIgnored) {
  Model m = rounding_trap();
  BranchAndBoundOptions opt;
  opt.warm_hint = {1.0};
  const Solution s = BranchAndBound(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

/// Every option combination must agree with brute force — warm start,
/// presolve, reduced-cost fixing and the parallel fan-out change the search
/// path, never the answer.
class SolverConfigSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverConfigSweepTest, AllConfigsMatchBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
  const int n = 12;
  std::vector<double> profit(n), weight(n);
  Model m;
  LinExpr cap, obj;
  for (int j = 0; j < n; ++j) {
    profit[j] = 1.0 + rng.next_unit() * 9.0;
    weight[j] = 1.0 + rng.next_unit() * 9.0;
    const VarId x = m.add_binary("x" + std::to_string(j));
    cap.add(x, weight[j]);
    obj.add(x, profit[j]);
  }
  const double capacity = 18.0 + rng.next_unit() * 12.0;
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, capacity);
  m.set_objective(Sense::kMaximize, std::move(obj));
  const double expect = brute_force_knapsack(profit, weight, capacity);

  struct Config {
    const char* name;
    bool warm, presolve;
    unsigned threads, depth;
  };
  const Config configs[] = {
      {"default", true, true, 1, 0},
      {"cold", false, true, 1, 0},
      {"no-presolve", true, false, 1, 0},
      {"bare", false, false, 1, 0},
      {"fanned", true, true, 1, 3},
      {"parallel", true, true, 4, 3},
  };
  for (const Config& c : configs) {
    BranchAndBoundOptions opt;
    opt.warm_start = c.warm;
    opt.presolve = c.presolve;
    opt.threads = c.threads;
    opt.subtree_depth = c.depth;
    const Solution s = BranchAndBound(opt).solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << c.name;
    EXPECT_NEAR(s.objective, expect, 1e-6) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverConfigSweepTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Parallel determinism: thread count never changes anything observable when
// the fan-out depth is pinned; only subtree_depth shapes the search.
// ---------------------------------------------------------------------------

TEST(BranchAndBoundParallel, ThreadCountInvariantSolutionsAndStats) {
  Rng rng(99);
  Model m;
  LinExpr cap, cap2, obj;
  for (int j = 0; j < 16; ++j) {
    const VarId x = m.add_binary("x" + std::to_string(j));
    cap.add(x, 2.0 + rng.next_unit() * 6.0);
    cap2.add(x, 1.0 + rng.next_unit() * 4.0);
    obj.add(x, 1.0 + rng.next_unit() * 9.0);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 25.0);
  m.add_constraint("cap2", std::move(cap2), Rel::kLessEq, 15.0);
  m.set_objective(Sense::kMaximize, std::move(obj));

  std::vector<Solution> sols;
  std::vector<SolveStats> stats;
  for (const unsigned threads : {1u, 2u, 8u}) {
    BranchAndBoundOptions opt;
    opt.threads = threads;
    opt.subtree_depth = 3;
    BranchAndBound solver(opt);
    sols.push_back(solver.solve(m));
    stats.push_back(solver.last_stats());
    ASSERT_EQ(sols.back().status, SolveStatus::kOptimal);
  }
  for (std::size_t i = 1; i < sols.size(); ++i) {
    EXPECT_EQ(sols[i].values, sols[0].values);  // bit-identical
    EXPECT_EQ(sols[i].objective, sols[0].objective);
    EXPECT_EQ(stats[i].nodes, stats[0].nodes);
    EXPECT_EQ(stats[i].max_depth, stats[0].max_depth);
    EXPECT_EQ(stats[i].incumbent_updates, stats[0].incumbent_updates);
    EXPECT_EQ(stats[i].bound_prunes, stats[0].bound_prunes);
    EXPECT_EQ(stats[i].infeasible_prunes, stats[0].infeasible_prunes);
    EXPECT_EQ(stats[i].simplex_iterations, stats[0].simplex_iterations);
    EXPECT_EQ(stats[i].subtrees, stats[0].subtrees);
    EXPECT_EQ(stats[i].rc_fixed, stats[0].rc_fixed);
  }
  EXPECT_EQ(stats[0].subtrees, 8u);
}

TEST(BranchAndBoundParallel, DerivedDepthKeepsObjectiveAcrossThreadCounts) {
  // With subtree_depth left at 0 the fan-out follows the thread count, so
  // counters may differ — but the optimum must not.
  Model m = rounding_trap();
  double first = 0.0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    BranchAndBoundOptions opt;
    opt.threads = threads;
    const Solution s = BranchAndBound(opt).solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    if (threads == 1u) {
      first = s.objective;
    } else {
      EXPECT_EQ(s.objective, first);
    }
  }
}

TEST(BranchAndBoundParallel, EmitsSubtreeTraceEventsWhenTracerAttached) {
  // Same instance as ThreadCountInvariantSolutionsAndStats: its fan-out is
  // pinned at 2^3 = 8 subtrees there, so the trace must show exactly one
  // span + one flow pair per subtree, and every search milestone the stats
  // report must have a matching timeline event.
  Rng rng(99);
  Model m;
  LinExpr cap, cap2, obj;
  for (int j = 0; j < 16; ++j) {
    const VarId x = m.add_binary("x" + std::to_string(j));
    cap.add(x, 2.0 + rng.next_unit() * 6.0);
    cap2.add(x, 1.0 + rng.next_unit() * 4.0);
    obj.add(x, 1.0 + rng.next_unit() * 9.0);
  }
  m.add_constraint("cap", std::move(cap), Rel::kLessEq, 25.0);
  m.add_constraint("cap2", std::move(cap2), Rel::kLessEq, 15.0);
  m.set_objective(Sense::kMaximize, std::move(obj));

  obs::Tracer tracer;
  obs::Tracer::set_current(&tracer);
  BranchAndBoundOptions opt;
  opt.threads = 2;
  opt.subtree_depth = 3;
  BranchAndBound solver(opt);
  const Solution s = solver.solve(m);
  obs::Tracer::set_current(nullptr);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  const SolveStats stats = solver.last_stats();
  ASSERT_EQ(stats.subtrees, 8u);

  const obs::TraceData data = tracer.drain();
  std::uint64_t begins = 0, ends = 0, tails = 0, heads = 0, incumbents = 0,
                presolves = 0, warms = 0, rc_fixes = 0;
  for (const obs::TraceEvent& e : data.events) {
    if (e.name == "ilp.subtree") {
      if (e.kind == obs::TraceEventKind::kBegin) ++begins;
      if (e.kind == obs::TraceEventKind::kEnd) ++ends;
      if (e.kind == obs::TraceEventKind::kFlowBegin) ++tails;
      if (e.kind == obs::TraceEventKind::kFlowEnd) ++heads;
    }
    if (e.kind == obs::TraceEventKind::kInstant) {
      if (e.name == "ilp.incumbent") ++incumbents;
      if (e.name == "ilp.presolve") ++presolves;
      if (e.name == "ilp.warm_start") ++warms;
      if (e.name == "ilp.rc_fixed") ++rc_fixes;
    }
  }
  EXPECT_EQ(begins, stats.subtrees);
  EXPECT_EQ(ends, stats.subtrees);
  EXPECT_EQ(tails, stats.subtrees);
  EXPECT_EQ(heads, stats.subtrees);
  EXPECT_EQ(incumbents, stats.incumbent_updates);
  EXPECT_EQ(presolves, 1u);  // presolve is on by default
  EXPECT_EQ(warms, stats.warm_start_used ? 1u : 0u);
  if (stats.warm_start_used) EXPECT_EQ(rc_fixes, 1u);
}

TEST(BranchAndBoundParallel, SerialSolveLeavesNoSubtreeSpans) {
  // subtree_depth 0 keeps the search in the root subtree: no fan-out, so
  // no ilp.subtree spans and no flows — the trace stays lean by default.
  Model m = rounding_trap();
  obs::Tracer tracer;
  obs::Tracer::set_current(&tracer);
  BranchAndBoundOptions opt;
  opt.threads = 1;
  opt.subtree_depth = 0;
  const Solution s = BranchAndBound(opt).solve(m);
  obs::Tracer::set_current(nullptr);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  for (const obs::TraceEvent& e : tracer.drain().events) {
    EXPECT_NE(e.name, "ilp.subtree");
    EXPECT_NE(e.kind, obs::TraceEventKind::kFlowBegin);
  }
}

TEST(BranchAndBoundParallel, TruncatedParallelSearchReportsLimit) {
  Model m = rounding_trap();
  BranchAndBoundOptions opt;
  opt.threads = 4;
  opt.subtree_depth = 2;
  opt.max_nodes = 4;  // one node per subtree: nobody can finish
  opt.warm_start = false;
  const Solution s = BranchAndBound(opt).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kLimit);
}

}  // namespace
}  // namespace casa::ilp

#include <gtest/gtest.h>

#include "casa/ilp/branch_bound.hpp"
#include "casa/ilp/knapsack.hpp"
#include "casa/support/error.hpp"
#include "casa/support/rng.hpp"

namespace casa::ilp {
namespace {

TEST(Knapsack, EmptyItems) {
  const KnapsackResult r = solve_knapsack({}, 100);
  EXPECT_EQ(r.total_profit, 0.0);
  EXPECT_EQ(r.used_capacity, 0u);
}

TEST(Knapsack, ZeroCapacityTakesNothing) {
  const KnapsackResult r = solve_knapsack({{5, 10.0}}, 0);
  EXPECT_EQ(r.total_profit, 0.0);
  EXPECT_FALSE(r.taken[0]);
}

TEST(Knapsack, ClassicInstance) {
  const std::vector<KnapsackItem> items{{2, 3}, {3, 4}, {4, 5}, {5, 6}};
  const KnapsackResult r = solve_knapsack(items, 5);
  EXPECT_EQ(r.total_profit, 7.0);
  EXPECT_TRUE(r.taken[0]);
  EXPECT_TRUE(r.taken[1]);
  EXPECT_EQ(r.used_capacity, 5u);
}

TEST(Knapsack, SkipsOversizedAndWorthless) {
  const std::vector<KnapsackItem> items{
      {100, 999.0},  // too heavy
      {1, 0.0},      // worthless
      {1, -5.0},     // negative
      {2, 4.0}};
  const KnapsackResult r = solve_knapsack(items, 10);
  EXPECT_EQ(r.total_profit, 4.0);
  EXPECT_FALSE(r.taken[0]);
  EXPECT_FALSE(r.taken[1]);
  EXPECT_FALSE(r.taken[2]);
  EXPECT_TRUE(r.taken[3]);
}

TEST(Knapsack, TakesEverythingWhenItFits) {
  const std::vector<KnapsackItem> items{{2, 1}, {3, 1}, {4, 1}};
  const KnapsackResult r = solve_knapsack(items, 100);
  EXPECT_EQ(r.total_profit, 3.0);
  EXPECT_EQ(r.used_capacity, 9u);
}

TEST(Knapsack, BacktrackedChoiceIsConsistent) {
  Rng rng(21);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 30; ++i) {
    items.push_back(
        {1 + rng.next_below(20), 1.0 + rng.next_unit() * 10.0});
  }
  const KnapsackResult r = solve_knapsack(items, 64);
  double p = 0;
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (r.taken[i]) {
      p += items[i].profit;
      w += items[i].weight;
    }
  }
  EXPECT_DOUBLE_EQ(p, r.total_profit);
  EXPECT_EQ(w, r.used_capacity);
  EXPECT_LE(w, 64u);
}

TEST(Knapsack, RejectsHugeCapacity) {
  EXPECT_THROW(solve_knapsack({{1, 1.0}}, 1u << 27), PreconditionError);
}

/// Brute-force cross-check on random instances.
class KnapsackRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const int n = 12;
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({1 + rng.next_below(15), rng.next_unit() * 20.0 - 2.0});
  }
  const std::uint64_t cap = 20 + rng.next_below(20);
  const KnapsackResult r = solve_knapsack(items, cap);

  double best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double p = 0;
    std::uint64_t w = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        p += items[i].profit;
        w += items[i].weight;
      }
    }
    if (w <= cap) best = std::max(best, p);
  }
  EXPECT_NEAR(r.total_profit, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandomTest, ::testing::Range(0, 12));

/// Three independent solvers, one answer: the DP, the generic branch &
/// bound over the same ILP, and exhaustive enumeration must agree on random
/// instances (the DP's backtrack must also reproduce its own claimed
/// profit and weight exactly).
class KnapsackTriangleTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackTriangleTest, DpEqualsBranchAndBoundEqualsBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 13);
  const int n = 11;
  std::vector<KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({1 + rng.next_below(12), rng.next_unit() * 18.0 - 3.0});
  }
  const std::uint64_t cap = 15 + rng.next_below(25);

  // Solver 1: capacity DP with bit-packed backtracking.
  const KnapsackResult dp = solve_knapsack(items, cap);

  // Solver 2: the same instance as a 0/1 ILP.
  Model m;
  LinExpr row, obj;
  for (int i = 0; i < n; ++i) {
    const VarId x = m.add_binary("x" + std::to_string(i));
    row.add(x, static_cast<double>(items[i].weight));
    obj.add(x, items[i].profit);
  }
  m.add_constraint("cap", std::move(row), Rel::kLessEq,
                   static_cast<double>(cap));
  m.set_objective(Sense::kMaximize, std::move(obj));
  const Solution bb = BranchAndBound().solve(m);
  ASSERT_EQ(bb.status, SolveStatus::kOptimal);

  // Solver 3: brute force.
  double best = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double p = 0;
    std::uint64_t w = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        p += items[i].profit;
        w += items[i].weight;
      }
    }
    if (w <= cap) best = std::max(best, p);
  }

  EXPECT_NEAR(dp.total_profit, best, 1e-9);
  EXPECT_NEAR(bb.objective, best, 1e-6);

  // The DP's reconstructed selection must account for its claimed numbers.
  double taken_profit = 0.0;
  std::uint64_t taken_weight = 0;
  for (int i = 0; i < n; ++i) {
    if (dp.taken[i]) {
      taken_profit += items[i].profit;
      taken_weight += items[i].weight;
    }
  }
  EXPECT_DOUBLE_EQ(taken_profit, dp.total_profit);
  EXPECT_EQ(taken_weight, dp.used_capacity);
  EXPECT_LE(taken_weight, cap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackTriangleTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace casa::ilp

#include <gtest/gtest.h>

#include "casa/energy/energy_table.hpp"
#include "casa/overlay/overlay_ilp.hpp"
#include "casa/overlay/overlay_sim.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::overlay {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

/// Two-phase program: a long filter loop, then a long pack loop. Each phase
/// has its own hot kernel — the textbook overlay case.
struct TwoPhaseRig {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;
  cachesim::CacheConfig cache;
  energy::EnergyTable energies;

  TwoPhaseRig()
      : program(make()),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        layout(traceopt::layout_all(tp)),
        cache(make_cache()),
        energies(energy::EnergyTable::build(cache, 128, 0, 0)) {}

  static prog::Program make() {
    ProgramBuilder b("twophase");
    b.function("main", [](FunctionScope& f) {
      f.loop(4000, [](FunctionScope& l) { l.code(96, "filter"); });
      f.loop(4000, [](FunctionScope& l) { l.code(96, "pack"); });
    });
    return b.build();
  }
  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 128;
    return o;
  }
  static cachesim::CacheConfig make_cache() {
    cachesim::CacheConfig c;
    c.size = 128;
    c.line_size = 16;
    return c;
  }

  PhaseProfile profile(unsigned phases) const {
    PhaseProfileOptions opt;
    opt.phase_count = phases;
    opt.cache = cache;
    return build_phase_profile(tp, layout, exec.walk, opt);
  }

  OverlayProblem problem(const PhaseProfile& prof) const {
    return OverlayProblem::from(prof, tp, energies, 128);
  }
};

TEST(PhaseProfile, WindowsPartitionTheWalk) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(4);
  ASSERT_EQ(prof.phase_count(), 4u);
  std::size_t prev_end = 0;
  for (const Phase& p : prof.phases()) {
    EXPECT_EQ(p.begin, prev_end);
    prev_end = p.end;
  }
  EXPECT_EQ(prev_end, rig.exec.walk.seq.size());
}

TEST(PhaseProfile, FetchTotalsMatchExecution) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(3);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < prof.object_count(); ++i) {
    total += prof.total_fetches(i);
  }
  EXPECT_EQ(total, rig.exec.total_fetches);
}

TEST(PhaseProfile, PhasesSeparateTheTwoKernels) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const auto& blocks = rig.program.function(rig.program.entry()).blocks();
  const std::size_t filter = rig.tp.object_of(blocks[1]).index();
  const std::size_t pack = rig.tp.object_of(blocks[4]).index();
  // Filter dominates phase 0, pack dominates phase 1.
  EXPECT_GT(prof.phases()[0].fetches[filter],
            10 * std::max<std::uint64_t>(1, prof.phases()[0].fetches[pack]));
  EXPECT_GT(prof.phases()[1].fetches[pack],
            10 * std::max<std::uint64_t>(1, prof.phases()[1].fetches[filter]));
}

TEST(OverlayIlp, SwapsResidencyAcrossPhases) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const OverlayResult r = allocate_overlay(rig.problem(prof));
  ASSERT_TRUE(r.exact);
  const auto& blocks = rig.program.function(rig.program.entry()).blocks();
  const std::size_t filter = rig.tp.object_of(blocks[1]).index();
  const std::size_t pack = rig.tp.object_of(blocks[4]).index();
  EXPECT_TRUE(r.residency[0][filter]);
  EXPECT_TRUE(r.residency[1][pack]);
  EXPECT_GE(r.copies, 2u);
}

TEST(OverlayIlp, BeatsStaticOnPhasedProgram) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const OverlayProblem p = rig.problem(prof);
  const OverlayResult dynamic = allocate_overlay(p);
  const OverlayResult fixed = allocate_static(p);
  EXPECT_LT(dynamic.predicted_energy, fixed.predicted_energy);
}

TEST(OverlayIlp, RespectsPerPhaseCapacity) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(3);
  const OverlayProblem p = rig.problem(prof);
  const OverlayResult r = allocate_overlay(p);
  for (const auto& phase_res : r.residency) {
    Bytes used = 0;
    for (std::size_t i = 0; i < phase_res.size(); ++i) {
      if (phase_res[i]) used += p.sizes[i];
    }
    EXPECT_LE(used, p.capacity);
  }
}

TEST(OverlayIlp, SinglePhaseEqualsStatic) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(1);
  const OverlayProblem p = rig.problem(prof);
  const OverlayResult dynamic = allocate_overlay(p);
  const OverlayResult fixed = allocate_static(p);
  EXPECT_NEAR(dynamic.predicted_energy, fixed.predicted_energy, 1e-6);
}

TEST(OverlayIlp, ProhibitiveCopyCostFreezesResidency) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  OverlayProblem p = rig.problem(prof);
  p.e_copy_word = 1e9;  // copying is absurdly expensive
  const OverlayResult r = allocate_overlay(p);
  // Nothing may be copied in after phase 0 (the initial load already costs
  // 1e9 per word, so at most the empty residency or none at all).
  EXPECT_LE(r.copies, 0u + r.residency[0].size());
  for (std::size_t i = 0; i < prof.object_count(); ++i) {
    const bool first = r.residency[0][i];
    for (std::size_t ph = 1; ph < r.residency.size(); ++ph) {
      if (!first) {
        EXPECT_FALSE(r.residency[ph][i]);
      }
    }
  }
}

TEST(OverlayGreedy, FeasibleAndAccountsCopies) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const OverlayProblem p = rig.problem(prof);
  const OverlayResult g = allocate_overlay_greedy(p);
  for (const auto& phase_res : g.residency) {
    Bytes used = 0;
    for (std::size_t i = 0; i < phase_res.size(); ++i) {
      if (phase_res[i]) used += p.sizes[i];
    }
    EXPECT_LE(used, p.capacity);
  }
  EXPECT_FALSE(g.exact);
  EXPECT_GE(g.predicted_energy, 0.0);
}

TEST(OverlayGreedy, NotBetterThanExactOnModel) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const OverlayProblem p = rig.problem(prof);
  const OverlayResult exact = allocate_overlay(p);
  const OverlayResult greedy = allocate_overlay_greedy(p);
  EXPECT_GE(greedy.predicted_energy, exact.predicted_energy - 1e-6);
}

TEST(OverlaySim, CountersConsistent) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const OverlayResult r = allocate_overlay(rig.problem(prof));
  const OverlaySimReport rep =
      simulate_overlay(rig.tp, rig.layout, rig.exec.walk, prof, r.residency,
                       rig.cache, rig.energies);
  EXPECT_EQ(rep.sim.counters.total_fetches, rig.exec.total_fetches);
  EXPECT_EQ(rep.sim.counters.total_fetches,
            rep.sim.counters.spm_accesses + rep.sim.counters.cache_accesses);
  EXPECT_EQ(rep.copies, r.copies);
  EXPECT_GT(rep.copy_energy, 0.0);
}

TEST(OverlaySim, DynamicBeatsStaticInSimulationToo) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  const OverlayProblem p = rig.problem(prof);
  const OverlayResult dyn = allocate_overlay(p);
  const OverlayResult fixed = allocate_static(p);
  const OverlaySimReport sim_dyn =
      simulate_overlay(rig.tp, rig.layout, rig.exec.walk, prof, dyn.residency,
                       rig.cache, rig.energies);
  const OverlaySimReport sim_fix =
      simulate_overlay(rig.tp, rig.layout, rig.exec.walk, prof,
                       fixed.residency, rig.cache, rig.energies);
  EXPECT_LT(sim_dyn.total_energy(), sim_fix.total_energy());
}

TEST(OverlaySim, ResidencySizeValidated) {
  const TwoPhaseRig rig;
  const PhaseProfile prof = rig.profile(2);
  std::vector<std::vector<bool>> bad(1);  // wrong phase count
  EXPECT_THROW(simulate_overlay(rig.tp, rig.layout, rig.exec.walk, prof, bad,
                                rig.cache, rig.energies),
               PreconditionError);
}

TEST(OverlayBeam, NeverLosesToStaticOnRealWorkload) {
  // Large instances route to the beam-DP path; seeding every pool with the
  // merged-profile residency guarantees it can always reproduce the static
  // solution, so its model energy must be <= static's.
  const prog::Program program = workloads::make_g721();
  const auto exec = trace::Executor::run(program);
  const auto cache = workloads::paper_cache_for("g721");
  for (const Bytes spm : {256u, 1024u}) {
    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = spm;
    const auto tp = traceopt::form_traces(program, exec.profile, topt);
    const auto layout = traceopt::layout_all(tp);
    PhaseProfileOptions popt;
    popt.phase_count = 4;
    popt.cache = cache;
    const PhaseProfile prof =
        build_phase_profile(tp, layout, exec.walk, popt);
    const auto energies = energy::EnergyTable::build(cache, spm, 0, 0);
    const OverlayProblem p = OverlayProblem::from(prof, tp, energies, spm);
    const OverlayResult dyn = allocate_overlay(p);
    const OverlayResult fixed = allocate_static(p);
    EXPECT_LE(dyn.predicted_energy, fixed.predicted_energy + 1e-6)
        << "spm " << spm;
  }
}

}  // namespace
}  // namespace casa::overlay

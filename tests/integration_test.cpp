// End-to-end pipeline tests over the Workbench: the paper's workflow from
// program to energy report, with the qualitative claims of the evaluation
// section asserted as invariants.
#include <gtest/gtest.h>

#include <memory>

#include "casa/report/workbench.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::report {
namespace {

/// Shared fixture: workbenches are expensive (full profiling run), build
/// them once per workload.
class WorkbenchFor {
 public:
  static const Workbench& get(const std::string& name) {
    static std::map<std::string, std::unique_ptr<Workbench>> cache;
    static std::map<std::string, std::unique_ptr<prog::Program>> programs;
    auto it = cache.find(name);
    if (it == cache.end()) {
      programs[name] =
          std::make_unique<prog::Program>(workloads::by_name(name));
      it = cache
               .emplace(name,
                        std::make_unique<Workbench>(*programs[name]))
               .first;
    }
    return *it->second;
  }
};

TEST(Pipeline, AdpcmCasaBeatsCacheOnly) {
  const Workbench& wb = WorkbenchFor::get("adpcm");
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome base = wb.evaluate(Workbench::Job::cache_only_job(cache)).value();
  const Outcome casa_run = wb.evaluate(Workbench::Job::casa_job(cache, 128)).value();
  EXPECT_LT(casa_run.sim.total_energy, base.sim.total_energy);
}

TEST(Pipeline, CasaEnergyMonotoneInSpmSizeForAdpcm) {
  const Workbench& wb = WorkbenchFor::get("adpcm");
  const auto cache = workloads::paper_cache_for("adpcm");
  double prev = wb.evaluate(Workbench::Job::casa_job(cache, 64)).value().sim.total_energy;
  for (const Bytes spm : {128u, 256u}) {
    const double e = wb.evaluate(Workbench::Job::casa_job(cache, spm)).value().sim.total_energy;
    EXPECT_LE(e, prev * 1.001) << "spm " << spm;
    prev = e;
  }
}

TEST(Pipeline, CasaBeatsLoopCacheEverywhereOnAdpcm) {
  // Paper §6: scratchpad+CASA outperforms the preloaded loop cache at every
  // size (Table 1 has no negative CASA-vs-LC entry).
  const Workbench& wb = WorkbenchFor::get("adpcm");
  const auto cache = workloads::paper_cache_for("adpcm");
  for (const Bytes size : workloads::paper_spm_sizes_for("adpcm")) {
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, size)).value();
    const Outcome lc = wb.evaluate(Workbench::Job::loopcache_job(cache, size, 4)).value();
    EXPECT_LT(c.sim.total_energy, lc.sim.total_energy) << "size " << size;
  }
}

TEST(Pipeline, CasaAllocationFitsAndIsExact) {
  const Workbench& wb = WorkbenchFor::get("adpcm");
  const auto cache = workloads::paper_cache_for("adpcm");
  for (const Bytes size : workloads::paper_spm_sizes_for("adpcm")) {
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, size)).value();
    EXPECT_LE(c.alloc().used_bytes, size);
    EXPECT_TRUE(c.alloc().exact);
  }
}

TEST(Pipeline, PredictedEnergyTracksSimulatedEnergy) {
  // The paper's model ignores cold misses and assumes a conflict edge's
  // misses vanish once either endpoint leaves the cache — optimistic under
  // deep multi-way thrash (adpcm's 128 B cache, the worst case for the
  // pairwise model: a third object can re-evict the victim). Prediction
  // must still land in the right ballpark, and be tighter on the
  // pairwise-conflict benchmark (g721).
  {
    const Workbench& wb = WorkbenchFor::get("adpcm");
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(workloads::paper_cache_for("adpcm"), 128)).value();
    const double rel =
        std::abs(c.alloc().predicted_energy - c.sim.total_energy) /
        c.sim.total_energy;
    EXPECT_LT(rel, 0.5);
  }
  {
    const Workbench& wb = WorkbenchFor::get("g721");
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(workloads::paper_cache_for("g721"), 512)).value();
    const double rel =
        std::abs(c.alloc().predicted_energy - c.sim.total_energy) /
        c.sim.total_energy;
    EXPECT_LT(rel, 0.25);
  }
}

TEST(Pipeline, SteinkeUsesMoveSemantics) {
  // With move semantics the residual image is compacted, so the two
  // allocators' layouts differ; both must preserve fetch totals.
  const Workbench& wb = WorkbenchFor::get("adpcm");
  const auto cache = workloads::paper_cache_for("adpcm");
  const Outcome st = wb.evaluate(Workbench::Job::steinke_job(cache, 128)).value();
  const Outcome ca = wb.evaluate(Workbench::Job::casa_job(cache, 128)).value();
  EXPECT_EQ(st.sim.counters.total_fetches, ca.sim.counters.total_fetches);
  EXPECT_GT(st.sim.counters.spm_accesses, 0u);
}

TEST(Pipeline, MoveVsCopyAblationChangesResults) {
  const prog::Program program = workloads::make_adpcm();
  WorkbenchOptions moves;
  moves.steinke_moves = true;
  WorkbenchOptions copies;
  copies.steinke_moves = false;
  const Workbench wb_m(program, moves);
  const Workbench wb_c(program, copies);
  const auto cache = workloads::paper_cache_for("adpcm");
  const double em = wb_m.evaluate(Workbench::Job::steinke_job(cache, 128)).value().sim.total_energy;
  const double ec = wb_c.evaluate(Workbench::Job::steinke_job(cache, 128)).value().sim.total_energy;
  EXPECT_NE(em, ec);  // layout shift must matter on a thrashing benchmark
}

TEST(Pipeline, LoopCacheRegionLimitBites) {
  const Workbench& wb = WorkbenchFor::get("g721");
  const auto cache = workloads::paper_cache_for("g721");
  const Outcome two = wb.evaluate(Workbench::Job::loopcache_job(cache, 1024, 2)).value();
  const Outcome eight = wb.evaluate(Workbench::Job::loopcache_job(cache, 1024, 8)).value();
  EXPECT_LE(two.lc_regions(), 2u);
  // More preloadable regions can only help coverage.
  EXPECT_GE(two.sim.counters.cache_accesses,
            eight.sim.counters.cache_accesses);
}

TEST(Pipeline, G721CasaCompetitiveWithSteinke) {
  // Paper Table 1 (g721): CASA within a few percent of Steinke at small
  // sizes and clearly ahead at 1024 B.
  const Workbench& wb = WorkbenchFor::get("g721");
  const auto cache = workloads::paper_cache_for("g721");
  const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, 1024)).value();
  const Outcome s = wb.evaluate(Workbench::Job::steinke_job(cache, 1024)).value();
  EXPECT_LT(c.sim.total_energy, s.sim.total_energy);
}

TEST(Pipeline, MpegFigure4Signature) {
  // Figure 4's qualitative content: vs Steinke, CASA has fewer scratchpad
  // accesses, more I-cache accesses, fewer I-cache misses, less energy.
  const Workbench& wb = WorkbenchFor::get("mpeg");
  const auto cache = workloads::paper_cache_for("mpeg");
  const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, 512)).value();
  const Outcome s = wb.evaluate(Workbench::Job::steinke_job(cache, 512)).value();
  EXPECT_LT(c.sim.counters.spm_accesses, s.sim.counters.spm_accesses);
  EXPECT_GT(c.sim.counters.cache_accesses, s.sim.counters.cache_accesses);
  EXPECT_LT(c.sim.counters.cache_misses, s.sim.counters.cache_misses);
  EXPECT_LT(c.sim.total_energy, s.sim.total_energy);
}

TEST(Pipeline, MpegSolvesUnderASecond) {
  // §4: "maximum runtime of the ILP solver ... was found to be less than a
  // second" — holds for our solver on the biggest benchmark.
  const Workbench& wb = WorkbenchFor::get("mpeg");
  const auto cache = workloads::paper_cache_for("mpeg");
  for (const Bytes size : workloads::paper_spm_sizes_for("mpeg")) {
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, size)).value();
    EXPECT_LT(c.alloc().solve_seconds, 1.0) << "size " << size;
    EXPECT_TRUE(c.alloc().exact);
  }
}

TEST(Pipeline, ConflictEdgesExistOnEveryPaperBenchmark) {
  for (const char* name : {"adpcm", "g721", "mpeg"}) {
    const Workbench& wb = WorkbenchFor::get(name);
    const auto cache = workloads::paper_cache_for(name);
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, 256)).value();
    ASSERT_EQ(c.flow(), FlowKind::kCasa) << name;
    EXPECT_GT(c.conflict_edges(), 10u) << name;
    EXPECT_GT(c.object_count, 10u) << name;
  }
}

TEST(Pipeline, DifferentSeedsSameQualitativeWinner) {
  // CASA vs loop cache must not depend on the executor seed.
  const prog::Program program = workloads::make_adpcm();
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    WorkbenchOptions opt;
    opt.exec_seed = seed;
    const Workbench wb(program, opt);
    const auto cache = workloads::paper_cache_for("adpcm");
    const Outcome c = wb.evaluate(Workbench::Job::casa_job(cache, 256)).value();
    const Outcome lc = wb.evaluate(Workbench::Job::loopcache_job(cache, 256, 4)).value();
    EXPECT_LT(c.sim.total_energy, lc.sim.total_energy) << "seed " << seed;
  }
}

TEST(Pipeline, CacheOnlyReferenceIsWorstCase) {
  const Workbench& wb = WorkbenchFor::get("g721");
  const auto cache = workloads::paper_cache_for("g721");
  const Outcome base = wb.evaluate(Workbench::Job::cache_only_job(cache)).value();
  for (const Bytes size : {256u, 1024u}) {
    EXPECT_LT(wb.evaluate(Workbench::Job::casa_job(cache, size)).value().sim.total_energy,
              base.sim.total_energy);
    EXPECT_LT(wb.evaluate(Workbench::Job::steinke_job(cache, size)).value().sim.total_energy,
              base.sim.total_energy);
  }
}

}  // namespace
}  // namespace casa::report

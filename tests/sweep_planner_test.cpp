// SweepPlanner equivalence suite.
//
// The planner's contract is "evaluate_batch, but faster": Outcomes,
// per-job telemetry, and thread invariance must all survive the switch to
// the one-pass stack engine. The suite holds Outcome equality over a mixed
// sweep (groupable LRU configs, FIFO/round-robin fallback, CASA/Steinke
// singletons, a loop-cache job, duplicates), per-shard counter parity for
// the keys a direct replay records, the sweep.* planning metrics, batch
// job deduplication, and the sweep.stack.mismatch check rule.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "casa/cachesim/cache.hpp"
#include "casa/check/diagnostic.hpp"
#include "casa/check/rules.hpp"
#include "casa/check/runner.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/report/workbench.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/sim/sweep_planner.hpp"
#include "casa/workloads/workloads.hpp"

namespace casa::sim {
namespace {

using report::Outcome;
using report::Workbench;
using Job = Workbench::Job;

cachesim::CacheConfig cache_cfg(
    Bytes size, unsigned assoc,
    cachesim::ReplacementPolicy policy = cachesim::ReplacementPolicy::kLru) {
  cachesim::CacheConfig cfg;
  cfg.size = size;
  cfg.line_size = 16;
  cfg.associativity = assoc;
  cfg.policy = policy;
  return cfg;
}

/// The sweep the planner must reproduce: one big groupable LRU cache-only
/// family, duplicates, non-LRU fallback configs, CASA and Steinke points,
/// and a loop-cache job (never stack-eligible).
std::vector<Job> mixed_jobs() {
  std::vector<Job> jobs;
  for (const Bytes size : {128u, 256u, 512u, 1024u}) {
    jobs.push_back(Job::cache_only_job(cache_cfg(size, 1)));
  }
  jobs.push_back(Job::cache_only_job(cache_cfg(256, 2)));
  jobs.push_back(Job::cache_only_job(cache_cfg(1024, 4)));
  jobs.push_back(jobs[0]);  // duplicates share one Outcome
  jobs.push_back(jobs[2]);
  jobs.push_back(Job::cache_only_job(
      cache_cfg(128, 1, cachesim::ReplacementPolicy::kFifo)));
  jobs.push_back(Job::cache_only_job(
      cache_cfg(512, 2, cachesim::ReplacementPolicy::kFifo)));
  jobs.push_back(Job::cache_only_job(
      cache_cfg(256, 1, cachesim::ReplacementPolicy::kRoundRobin)));
  jobs.push_back(Job::casa_job(cache_cfg(256, 1), 256));
  jobs.push_back(Job::casa_job(cache_cfg(512, 2), 256));
  jobs.push_back(Job::steinke_job(cache_cfg(256, 1), 256));
  jobs.push_back(Job::loopcache_job(cache_cfg(256, 1), 128));
  return jobs;
}

void expect_outcome_eq(const Outcome& a, const Outcome& b, std::size_t i) {
  const memsim::SimCounters& x = a.sim.counters;
  const memsim::SimCounters& y = b.sim.counters;
  EXPECT_EQ(x.total_fetches, y.total_fetches) << "job " << i;
  EXPECT_EQ(x.spm_accesses, y.spm_accesses) << "job " << i;
  EXPECT_EQ(x.lc_accesses, y.lc_accesses) << "job " << i;
  EXPECT_EQ(x.cache_accesses, y.cache_accesses) << "job " << i;
  EXPECT_EQ(x.cache_hits, y.cache_hits) << "job " << i;
  EXPECT_EQ(x.cache_misses, y.cache_misses) << "job " << i;
  EXPECT_EQ(x.cache_evictions, y.cache_evictions) << "job " << i;
  EXPECT_EQ(x.mainmem_words, y.mainmem_words) << "job " << i;
  EXPECT_EQ(x.cycles, y.cycles) << "job " << i;
  // Energies derive from counters through the same arithmetic on both
  // paths, so equality here is exact, not approximate.
  EXPECT_EQ(a.sim.total_energy, b.sim.total_energy) << "job " << i;
  EXPECT_EQ(a.sim.spm_energy, b.sim.spm_energy) << "job " << i;
  EXPECT_EQ(a.sim.cache_energy, b.sim.cache_energy) << "job " << i;
  EXPECT_EQ(a.sim.lc_energy, b.sim.lc_energy) << "job " << i;
  EXPECT_EQ(a.object_count, b.object_count) << "job " << i;
  ASSERT_EQ(a.flow(), b.flow()) << "job " << i;
  EXPECT_EQ(a.spm_used, b.spm_used) << "job " << i;
  if (a.flow() == report::FlowKind::kCasa) {
    EXPECT_EQ(a.alloc().on_spm, b.alloc().on_spm) << "job " << i;
    EXPECT_EQ(a.alloc().used_bytes, b.alloc().used_bytes) << "job " << i;
  }
  // The contract is full bit equality, flow-gated fields included.
  EXPECT_EQ(a, b) << "job " << i;
}

/// The deterministic per-replay counter keys run_lines / run_words record.
const char* const kReplayKeys[] = {
    "sim.fetches",        "sim.spm_accesses",     "sim.lc_accesses",
    "cache.accesses",     "cache.hits",           "cache.misses",
    "cache.evictions",    "sim.mainmem_words",    "sim.cycles",
    "stream.compiled_runs", "stream.replayed_runs", "stream.replayed_words",
};

std::map<std::string, std::uint64_t> replay_counters(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const char* key : kReplayKeys) {
    const auto it = snap.counters.find(key);
    if (it != snap.counters.end()) out[key] = it->second;
  }
  return out;
}

TEST(SweepPlanner, MatchesRunManyOnAMixedSweep) {
  const prog::Program program = workloads::by_name("adpcm");
  const Workbench bench(program);
  const std::vector<Job> jobs = mixed_jobs();

  report::BatchOptions serial_opt;
  serial_opt.threads = 1;
  std::vector<Outcome> direct;
  for (report::JobResult& r : bench.evaluate_batch(jobs, serial_opt)) {
    direct.push_back(std::move(r.outcome));
  }
  const std::vector<Outcome> swept = SweepPlanner(bench).run(jobs, 1);
  ASSERT_EQ(swept.size(), direct.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_outcome_eq(swept[i], direct[i], i);
  }
}

TEST(SweepPlanner, ShardCountersMatchRunMany) {
  const prog::Program program = workloads::by_name("adpcm");
  const Workbench bench(program);
  const std::vector<Job> jobs = mixed_jobs();

  MetricsShards direct_shards(jobs.size());
  MetricsShards swept_shards(jobs.size());
  report::BatchOptions serial_opt;
  serial_opt.threads = 1;
  bench.evaluate_batch(jobs, serial_opt, &direct_shards);
  SweepPlanner(bench).run(jobs, 1, &swept_shards);

  const std::vector<obs::MetricsSnapshot> direct = direct_shards.snapshots();
  const std::vector<obs::MetricsSnapshot> swept = swept_shards.snapshots();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(replay_counters(swept[i]), replay_counters(direct[i]))
        << "job " << i;
  }
}

TEST(SweepPlanner, RecordsSweepMetrics) {
  const prog::Program program = workloads::by_name("adpcm");
  obs::MetricsRegistry reg;
  report::WorkbenchOptions wopt;
  wopt.metrics = &reg;
  const Workbench bench(program, wopt);
  const std::vector<Job> jobs = mixed_jobs();

  SweepPlanner(bench).run(jobs, 1);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("runner.jobs"), jobs.size());
  // mixed_jobs repeats two cache-only points.
  EXPECT_EQ(snap.counters.at("sweep.dedup_hits"), 2u);
  EXPECT_EQ(snap.counters.at("runner.dedup_hits"), 2u);
  // The six distinct LRU cache-only configs share one stream, so at least
  // one stack pass with >= 6 configurations must have run.
  EXPECT_GE(snap.counters.at("sweep.stack_passes"), 1u);
  EXPECT_GE(snap.counters.at("sweep.stack_hits"), 6u);
  EXPECT_GT(snap.counters.at("sweep.groups"), 0u);
  EXPECT_GT(snap.counters.at("sweep.fallback_configs"), 0u);
  const auto it = snap.distributions.find("sweep.configs_per_pass");
  ASSERT_TRUE(it != snap.distributions.end());
  EXPECT_GE(it->second.max, 6.0);
}

TEST(SweepPlanner, ThreadCountInvariant) {
  const prog::Program program = workloads::by_name("adpcm");
  const std::vector<Job> jobs = mixed_jobs();

  obs::MetricsRegistry reg1;
  report::WorkbenchOptions o1;
  o1.metrics = &reg1;
  const Workbench b1(program, o1);
  const std::vector<Outcome> r1 = SweepPlanner(b1).run(jobs, 1);

  obs::MetricsRegistry reg3;
  report::WorkbenchOptions o3;
  o3.metrics = &reg3;
  const Workbench b3(program, o3);
  const std::vector<Outcome> r3 = SweepPlanner(b3).run(jobs, 3);

  ASSERT_EQ(r1.size(), r3.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    expect_outcome_eq(r1[i], r3[i], i);
  }
  // Counters (not spans/gauges — those carry wall time and thread count)
  // must merge to identical values for any worker count.
  EXPECT_EQ(reg1.snapshot().counters, reg3.snapshot().counters);
}

TEST(RunMany, DeduplicatesIdenticalJobs) {
  const prog::Program program = workloads::by_name("adpcm");
  obs::MetricsRegistry reg;
  report::WorkbenchOptions wopt;
  wopt.metrics = &reg;
  const Workbench bench(program, wopt);

  const Job point = Job::cache_only_job(cache_cfg(256, 1));
  const std::vector<Job> jobs = {point, Job::cache_only_job(cache_cfg(512, 1)),
                                 point, point};
  report::BatchOptions serial_opt;
  serial_opt.threads = 1;
  std::vector<Outcome> results;
  for (report::JobResult& r : bench.evaluate_batch(jobs, serial_opt)) {
    results.push_back(std::move(r.outcome));
  }
  ASSERT_EQ(results.size(), 4u);
  expect_outcome_eq(results[2], results[0], 2);
  expect_outcome_eq(results[3], results[0], 3);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("runner.jobs"), 4u);
  EXPECT_EQ(snap.counters.at("runner.dedup_hits"), 2u);
  // Only the two unique flows recorded: the merged fetch count equals two
  // solo runs, not four.
  const Outcome solo_a = bench.evaluate(Job::cache_only_job(cache_cfg(256, 1))).value();
  const Outcome solo_b = bench.evaluate(Job::cache_only_job(cache_cfg(512, 1))).value();
  EXPECT_EQ(snap.counters.at("sim.fetches"),
            solo_a.sim.counters.total_fetches +
                solo_b.sim.counters.total_fetches);
}

TEST(SweepPlanner, EmitsTraceEventsWhenTracerAttached) {
  const prog::Program program = workloads::by_name("adpcm");
  const Workbench bench(program);
  const std::vector<Job> jobs = mixed_jobs();

  obs::Tracer tracer;
  obs::Tracer::set_current(&tracer);
  SweepPlanner(bench).run(jobs, 2);
  obs::Tracer::set_current(nullptr);

  const obs::TraceData data = tracer.drain();
  std::uint64_t sweeps = 0, passes = 0, tasks = 0, tails = 0, heads = 0,
                pass_instants = 0;
  for (const obs::TraceEvent& e : data.events) {
    if (e.kind == obs::TraceEventKind::kBegin && e.name == "sweep") ++sweeps;
    if (e.kind == obs::TraceEventKind::kBegin &&
        e.name == "sweep.stack_pass") {
      ++passes;
    }
    if (e.kind == obs::TraceEventKind::kBegin && e.name == "task") ++tasks;
    if (e.kind == obs::TraceEventKind::kFlowBegin) ++tails;
    if (e.kind == obs::TraceEventKind::kFlowEnd) ++heads;
    if (e.kind == obs::TraceEventKind::kInstant &&
        e.name == "sweep.configs_per_pass") {
      ++pass_instants;
    }
  }
  EXPECT_EQ(sweeps, 1u);
  EXPECT_GE(passes, 1u);      // the groupable LRU family ran as a stack pass
  EXPECT_EQ(passes, pass_instants);
  EXPECT_GT(tasks, 0u);       // fallback + singleton jobs fan out as tasks
  EXPECT_EQ(tails, heads);    // every scheduled flow got picked up
  EXPECT_GT(tails, 0u);
}

TEST(CheckStackSweep, PassesOnIdenticalCounters) {
  memsim::SimCounters c;
  c.total_fetches = 100;
  c.cache_accesses = 100;
  c.cache_hits = 90;
  c.cache_misses = 10;
  c.cycles = 500;
  check::CheckRunner runner;
  check::check_stack_sweep(c, c, cache_cfg(256, 1), runner);
  EXPECT_TRUE(runner.ok());
  EXPECT_EQ(runner.rules_evaluated(), 1u);
}

TEST(CheckStackSweep, FlagsEveryDivergentField) {
  memsim::SimCounters stack;
  stack.total_fetches = 100;
  stack.cache_hits = 90;
  memsim::SimCounters direct = stack;
  direct.cache_hits = 80;
  direct.cache_misses = 10;
  check::CheckRunner runner;
  check::check_stack_sweep(stack, direct, cache_cfg(256, 1), runner);
  EXPECT_FALSE(runner.ok());
  EXPECT_EQ(runner.error_count(), 2u);  // cache_hits and cache_misses
  EXPECT_EQ(runner.diagnostics()[0].rule, "sweep.stack.mismatch");
  EXPECT_THROW(runner.throw_if_errors(), check::CheckError);
}

}  // namespace
}  // namespace casa::sim

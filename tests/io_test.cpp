#include <gtest/gtest.h>

#include <sstream>

#include "casa/core/allocator.hpp"
#include "casa/io/serialize.hpp"

namespace casa::io {
namespace {

conflict::ConflictGraph sample_graph() {
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(0), MemoryObjectId(1), 42},
      {MemoryObjectId(1), MemoryObjectId(0), 17},
      {MemoryObjectId(2), MemoryObjectId(0), 5}};
  return conflict::ConflictGraph(3, {1000, 800, 60}, {3, 1, 2},
                                 {955, 782, 53}, std::move(edges));
}

core::CasaProblem sample_problem(const conflict::ConflictGraph& g) {
  core::CasaProblem p;
  p.graph = &g;
  p.sizes = {64, 96, 32};
  p.capacity = 128;
  p.e_cache_hit = 0.8;
  p.e_cache_miss = 31.5;
  p.e_spm = 0.3;
  return p;
}

TEST(IoGraph, RoundTripPreservesEverything) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_conflict_graph(ss, g);
  const auto g2 = read_conflict_graph(ss);

  ASSERT_EQ(g2.node_count(), g.node_count());
  ASSERT_EQ(g2.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    EXPECT_EQ(g2.fetches(mo), g.fetches(mo));
    EXPECT_EQ(g2.cold_misses(mo), g.cold_misses(mo));
    EXPECT_EQ(g2.hits(mo), g.hits(mo));
  }
  EXPECT_EQ(g2.miss_weight(MemoryObjectId(0), MemoryObjectId(1)), 42u);
  EXPECT_EQ(g2.miss_weight(MemoryObjectId(1), MemoryObjectId(0)), 17u);
}

TEST(IoGraph, RejectsBadHeader) {
  std::stringstream ss("casa-conflict-graph v999\nnodes 0\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsOutOfRangeEdge) {
  std::stringstream ss(
      "casa-conflict-graph v1\nnodes 1\n"
      "node 0 fetches 1 cold 0 hits 1\nedge 0 7 3\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsMissingEnd) {
  std::stringstream ss(
      "casa-conflict-graph v1\nnodes 1\nnode 0 fetches 1 cold 0 hits 1\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsNodeCountMismatch) {
  std::stringstream ss("casa-conflict-graph v1\nnodes 2\n"
                       "node 0 fetches 1 cold 0 hits 1\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoProblem, RoundTripSolvesIdentically) {
  const auto g = sample_graph();
  const auto p = sample_problem(g);

  std::stringstream ss;
  write_problem(ss, p);
  const LoadedProblem loaded = read_problem(ss);

  EXPECT_EQ(loaded.problem.capacity, p.capacity);
  EXPECT_EQ(loaded.problem.sizes, p.sizes);
  EXPECT_DOUBLE_EQ(loaded.problem.e_cache_hit, p.e_cache_hit);

  const core::AllocationResult a = core::CasaAllocator().allocate(p);
  const core::AllocationResult b =
      core::CasaAllocator().allocate(loaded.problem);
  EXPECT_EQ(a.on_spm, b.on_spm);
  EXPECT_NEAR(a.predicted_energy, b.predicted_energy, 1e-6);
}

TEST(IoProblem, LoadedProblemOwnsItsGraph) {
  std::stringstream ss;
  {
    const auto g = sample_graph();
    write_problem(ss, sample_problem(g));
  }  // original graph destroyed
  const LoadedProblem loaded = read_problem(ss);
  EXPECT_EQ(loaded.problem.graph, loaded.graph.get());
  EXPECT_EQ(loaded.graph->node_count(), 3u);
}

TEST(IoProblem, RejectsCorruptEnergyLine) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_problem(ss, sample_problem(g));
  std::string text = ss.str();
  const auto pos = text.find("energy hit");
  text.replace(pos, 10, "energy pot");
  std::stringstream bad(text);
  EXPECT_THROW(read_problem(bad), PreconditionError);
}

TEST(IoAllocation, RoundTrip) {
  const std::vector<bool> mask{true, false, true, false, false, true};
  std::stringstream ss;
  write_allocation(ss, mask);
  EXPECT_EQ(read_allocation(ss), mask);
}

TEST(IoAllocation, EmptyMask) {
  const std::vector<bool> mask(4, false);
  std::stringstream ss;
  write_allocation(ss, mask);
  EXPECT_EQ(read_allocation(ss), mask);
}

TEST(IoAllocation, RejectsIndexOutOfRange) {
  std::stringstream ss("casa-allocation v1\nobjects 2\nspm 5\nend\n");
  EXPECT_THROW(read_allocation(ss), PreconditionError);
}

TEST(Io, WhitespaceAndBlankLinesTolerated) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_conflict_graph(ss, g);
  std::stringstream padded("\n\n" + ss.str());
  EXPECT_NO_THROW(read_conflict_graph(padded));
}

// ---------------------------------------------------------------------------
// casa-trace v1.

obs::TraceEvent trace_event(obs::TraceEventKind kind, std::uint32_t tid,
                            std::uint64_t ts_ns, std::string name,
                            std::string cat) {
  obs::TraceEvent e;
  e.kind = kind;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.name = std::move(name);
  e.cat = std::move(cat);
  return e;
}

// Every event kind, two tracks (one pool worker, one plain thread), a paired
// flow, and odd nanosecond timestamps that stress the microsecond encoding.
obs::TraceData sample_trace() {
  obs::TraceData data;
  data.tracks.push_back({0, -1, "main"});
  data.tracks.push_back({1, 0, "sim-0"});
  using K = obs::TraceEventKind;
  data.events.push_back(trace_event(K::kBegin, 0, 0, "run_casa", "phase"));
  obs::TraceEvent tail = trace_event(K::kFlowBegin, 0, 1'001, "task", "flow");
  tail.flow_id = 9;
  data.events.push_back(tail);
  obs::TraceEvent head = trace_event(K::kFlowEnd, 1, 2'003, "task", "flow");
  head.flow_id = 9;
  data.events.push_back(head);
  data.events.push_back(trace_event(K::kBegin, 1, 2'003, "task", "sim"));
  obs::TraceEvent inst =
      trace_event(K::kInstant, 1, 2'500, "ilp.incumbent", "ilp");
  inst.value = -12.75;
  data.events.push_back(inst);
  obs::TraceEvent ctr = trace_event(K::kCounter, 1, 2'750, "ilp.nodes", "ilp");
  ctr.value = 4096;
  data.events.push_back(ctr);
  data.events.push_back(trace_event(K::kEnd, 1, 123'456'789, "task", "sim"));
  data.events.push_back(
      trace_event(K::kEnd, 0, 987'654'321, "run_casa", "phase"));
  return data;
}

std::string trace_text(const obs::TraceData& data) {
  std::ostringstream os;
  io::write_trace_json(os, data, "io_test");
  return os.str();
}

TEST(IoTrace, RoundTripIsExact) {
  const obs::TraceData data = sample_trace();
  std::istringstream is(trace_text(data));
  const obs::TraceData back = read_trace_json(is);
  EXPECT_EQ(back, data);
}

TEST(IoTrace, RejectsWrongSchema) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("casa-trace v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "casa-trace v9");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsUnknownPhase) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("\"ph\": \"C\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"ph\": \"X\"");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsMissingTimestamp) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("\"ts\": ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"xs\": ");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsMissingRunProvenance) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("\"tool\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"fool\"");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsUnpairedFlowInCompleteTrace) {
  obs::TraceData data = sample_trace();
  // Drop the flow head: with dropped == 0 the trace claims to be complete,
  // so the dangling tail is corruption, not truncation.
  std::erase_if(data.events, [](const obs::TraceEvent& e) {
    return e.kind == obs::TraceEventKind::kFlowEnd;
  });
  std::istringstream complete(trace_text(data));
  EXPECT_THROW(read_trace_json(complete), PreconditionError);

  // The same artifact with a nonzero drop count is legitimate truncation.
  data.dropped = 1;
  std::istringstream truncated(trace_text(data));
  EXPECT_NO_THROW(read_trace_json(truncated));
}

TEST(IoTrace, RejectsTrailingGarbage) {
  std::string text = trace_text(sample_trace());
  text += "}";
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

}  // namespace
}  // namespace casa::io

#include <gtest/gtest.h>

#include <sstream>

#include "casa/cachesim/cache.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/formulation.hpp"
#include "casa/io/serialize.hpp"

namespace casa::io {
namespace {

conflict::ConflictGraph sample_graph() {
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(0), MemoryObjectId(1), 42},
      {MemoryObjectId(1), MemoryObjectId(0), 17},
      {MemoryObjectId(2), MemoryObjectId(0), 5}};
  return conflict::ConflictGraph(3, {1000, 800, 60}, {3, 1, 2},
                                 {955, 782, 53}, std::move(edges));
}

core::CasaProblem sample_problem(const conflict::ConflictGraph& g) {
  core::CasaProblem p;
  p.graph = &g;
  p.sizes = {64, 96, 32};
  p.capacity = 128;
  p.e_cache_hit = 0.8;
  p.e_cache_miss = 31.5;
  p.e_spm = 0.3;
  return p;
}

TEST(IoGraph, RoundTripPreservesEverything) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_conflict_graph(ss, g);
  const auto g2 = read_conflict_graph(ss);

  ASSERT_EQ(g2.node_count(), g.node_count());
  ASSERT_EQ(g2.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    EXPECT_EQ(g2.fetches(mo), g.fetches(mo));
    EXPECT_EQ(g2.cold_misses(mo), g.cold_misses(mo));
    EXPECT_EQ(g2.hits(mo), g.hits(mo));
  }
  EXPECT_EQ(g2.miss_weight(MemoryObjectId(0), MemoryObjectId(1)), 42u);
  EXPECT_EQ(g2.miss_weight(MemoryObjectId(1), MemoryObjectId(0)), 17u);
}

TEST(IoGraph, RejectsBadHeader) {
  std::stringstream ss("casa-conflict-graph v999\nnodes 0\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsOutOfRangeEdge) {
  std::stringstream ss(
      "casa-conflict-graph v1\nnodes 1\n"
      "node 0 fetches 1 cold 0 hits 1\nedge 0 7 3\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsMissingEnd) {
  std::stringstream ss(
      "casa-conflict-graph v1\nnodes 1\nnode 0 fetches 1 cold 0 hits 1\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsNodeCountMismatch) {
  std::stringstream ss("casa-conflict-graph v1\nnodes 2\n"
                       "node 0 fetches 1 cold 0 hits 1\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoProblem, RoundTripSolvesIdentically) {
  const auto g = sample_graph();
  const auto p = sample_problem(g);

  std::stringstream ss;
  write_problem(ss, p);
  const LoadedProblem loaded = read_problem(ss);

  EXPECT_EQ(loaded.problem.capacity, p.capacity);
  EXPECT_EQ(loaded.problem.sizes, p.sizes);
  EXPECT_DOUBLE_EQ(loaded.problem.e_cache_hit, p.e_cache_hit);

  const core::AllocationResult a = core::CasaAllocator().allocate(p);
  const core::AllocationResult b =
      core::CasaAllocator().allocate(loaded.problem);
  EXPECT_EQ(a.on_spm, b.on_spm);
  EXPECT_NEAR(a.predicted_energy, b.predicted_energy, 1e-6);
}

TEST(IoProblem, LoadedProblemOwnsItsGraph) {
  std::stringstream ss;
  {
    const auto g = sample_graph();
    write_problem(ss, sample_problem(g));
  }  // original graph destroyed
  const LoadedProblem loaded = read_problem(ss);
  EXPECT_EQ(loaded.problem.graph, loaded.graph.get());
  EXPECT_EQ(loaded.graph->node_count(), 3u);
}

TEST(IoProblem, RejectsCorruptEnergyLine) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_problem(ss, sample_problem(g));
  std::string text = ss.str();
  const auto pos = text.find("energy hit");
  text.replace(pos, 10, "energy pot");
  std::stringstream bad(text);
  EXPECT_THROW(read_problem(bad), PreconditionError);
}

TEST(IoAllocation, RoundTrip) {
  const std::vector<bool> mask{true, false, true, false, false, true};
  std::stringstream ss;
  write_allocation(ss, mask);
  EXPECT_EQ(read_allocation(ss), mask);
}

TEST(IoAllocation, EmptyMask) {
  const std::vector<bool> mask(4, false);
  std::stringstream ss;
  write_allocation(ss, mask);
  EXPECT_EQ(read_allocation(ss), mask);
}

TEST(IoAllocation, RejectsIndexOutOfRange) {
  std::stringstream ss("casa-allocation v1\nobjects 2\nspm 5\nend\n");
  EXPECT_THROW(read_allocation(ss), PreconditionError);
}

TEST(Io, WhitespaceAndBlankLinesTolerated) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_conflict_graph(ss, g);
  std::stringstream padded("\n\n" + ss.str());
  EXPECT_NO_THROW(read_conflict_graph(padded));
}

// ---------------------------------------------------------------------------
// casa-trace v1.

obs::TraceEvent trace_event(obs::TraceEventKind kind, std::uint32_t tid,
                            std::uint64_t ts_ns, std::string name,
                            std::string cat) {
  obs::TraceEvent e;
  e.kind = kind;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.name = std::move(name);
  e.cat = std::move(cat);
  return e;
}

// Every event kind, two tracks (one pool worker, one plain thread), a paired
// flow, and odd nanosecond timestamps that stress the microsecond encoding.
obs::TraceData sample_trace() {
  obs::TraceData data;
  data.tracks.push_back({0, -1, "main"});
  data.tracks.push_back({1, 0, "sim-0"});
  using K = obs::TraceEventKind;
  data.events.push_back(trace_event(K::kBegin, 0, 0, "run_casa", "phase"));
  obs::TraceEvent tail = trace_event(K::kFlowBegin, 0, 1'001, "task", "flow");
  tail.flow_id = 9;
  data.events.push_back(tail);
  obs::TraceEvent head = trace_event(K::kFlowEnd, 1, 2'003, "task", "flow");
  head.flow_id = 9;
  data.events.push_back(head);
  data.events.push_back(trace_event(K::kBegin, 1, 2'003, "task", "sim"));
  obs::TraceEvent inst =
      trace_event(K::kInstant, 1, 2'500, "ilp.incumbent", "ilp");
  inst.value = -12.75;
  data.events.push_back(inst);
  obs::TraceEvent ctr = trace_event(K::kCounter, 1, 2'750, "ilp.nodes", "ilp");
  ctr.value = 4096;
  data.events.push_back(ctr);
  data.events.push_back(trace_event(K::kEnd, 1, 123'456'789, "task", "sim"));
  data.events.push_back(
      trace_event(K::kEnd, 0, 987'654'321, "run_casa", "phase"));
  return data;
}

std::string trace_text(const obs::TraceData& data) {
  std::ostringstream os;
  io::write_trace_json(os, data, "io_test");
  return os.str();
}

TEST(IoTrace, RoundTripIsExact) {
  const obs::TraceData data = sample_trace();
  std::istringstream is(trace_text(data));
  const obs::TraceData back = read_trace_json(is);
  EXPECT_EQ(back, data);
}

TEST(IoTrace, RejectsWrongSchema) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("casa-trace v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "casa-trace v9");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsUnknownPhase) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("\"ph\": \"C\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "\"ph\": \"X\"");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsMissingTimestamp) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("\"ts\": ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"xs\": ");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsMissingRunProvenance) {
  std::string text = trace_text(sample_trace());
  const auto pos = text.find("\"tool\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"fool\"");
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

TEST(IoTrace, RejectsUnpairedFlowInCompleteTrace) {
  obs::TraceData data = sample_trace();
  // Drop the flow head: with dropped == 0 the trace claims to be complete,
  // so the dangling tail is corruption, not truncation.
  std::erase_if(data.events, [](const obs::TraceEvent& e) {
    return e.kind == obs::TraceEventKind::kFlowEnd;
  });
  std::istringstream complete(trace_text(data));
  EXPECT_THROW(read_trace_json(complete), PreconditionError);

  // The same artifact with a nonzero drop count is legitimate truncation.
  data.dropped = 1;
  std::istringstream truncated(trace_text(data));
  EXPECT_NO_THROW(read_trace_json(truncated));
}

TEST(IoTrace, RejectsTrailingGarbage) {
  std::string text = trace_text(sample_trace());
  text += "}";
  std::istringstream is(text);
  EXPECT_THROW(read_trace_json(is), PreconditionError);
}

// A fully-populated synthetic CASA outcome: every optional field engaged,
// doubles with non-terminating binary fractions, so the byte-identity
// assertions exercise the exact-encoding contract rather than round
// numbers.
report::JobResult sample_result() {
  report::Outcome out(report::FlowKind::kCasa);
  out.object_count = 29;
  out.spm_used = 480;
  out.sim.counters.total_fetches = 1745509;
  out.sim.counters.spm_accesses = 1649458;
  out.sim.counters.cache_accesses = 96051;
  out.sim.counters.cache_hits = 96007;
  out.sim.counters.cache_misses = 44;
  out.sim.counters.mainmem_words = 176;
  out.sim.counters.cycles = 1746037;
  out.sim.total_energy = 495858.251762;
  out.sim.spm_energy = 417835.4222944;
  out.sim.cache_energy = 78022.8294676;
  out.set_conflict_edges(17);
  core::AllocationResult alloc;
  alloc.on_spm = {true, false, true, true, false};
  alloc.used_bytes = 480;
  alloc.predicted_energy = 494006.4394612;
  alloc.predicted_saving = 890228.97718;
  alloc.solver_nodes = 8;
  alloc.exact = true;
  alloc.solve_seconds = 0.125;
  alloc.engine_used = core::CasaEngine::kGenericIlp;
  alloc.solver_stats.nodes = 8;
  alloc.solver_stats.max_depth = 3;
  alloc.solver_stats.simplex_iterations = 214;
  out.set_alloc(std::move(alloc));

  report::JobResult result;
  result.status = report::JobStatus::kRetriedOk;
  result.outcome = std::move(out);
  result.attempts = 2;
  return result;
}

report::Workbench::Job sample_job() {
  cachesim::CacheConfig cache;
  cache.size = 1024;
  cache.line_size = 16;
  cache.associativity = 2;
  core::CasaOptions opt;
  opt.engine = core::CasaEngine::kGenericIlp;
  opt.max_nodes = 5000;
  return report::Workbench::Job::casa_job(cache, 512, opt);
}

TEST(IoResult, RoundTripIsExactAndByteIdentical) {
  const report::Workbench::Job job = sample_job();
  const report::JobResult result = sample_result();

  std::ostringstream first;
  write_result_json(first, job, result, "adpcm", "casa_serve");
  const std::string text = std::move(first).str();

  std::istringstream is(text);
  const LoadedResult loaded = read_result_json(is);
  EXPECT_EQ(loaded.workload, "adpcm");
  EXPECT_TRUE(loaded.job == job);
  EXPECT_EQ(loaded.result.status, result.status);
  EXPECT_EQ(loaded.result.attempts, result.attempts);
  EXPECT_TRUE(loaded.result.outcome == result.outcome);

  // write(read(write(x))) == write(x): the hit-streams-stored-bytes
  // contract of the serve cache.
  std::ostringstream second;
  write_result_json(second, loaded.job, loaded.result, loaded.workload,
                    "casa_serve");
  EXPECT_EQ(std::move(second).str(), text);
}

TEST(IoResult, RejectsCorruptedAndWrongSchemaArtifacts) {
  std::ostringstream os;
  write_result_json(os, sample_job(), sample_result(), "adpcm");
  const std::string text = std::move(os).str();

  std::istringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(read_result_json(truncated), PreconditionError);

  std::string wrong_schema = text;
  const std::size_t at = wrong_schema.find("casa-result v1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 14, "casa-result v9");
  std::istringstream wrong(wrong_schema);
  EXPECT_THROW(read_result_json(wrong), PreconditionError);

  std::istringstream garbage("not an artifact at all");
  EXPECT_THROW(read_result_json(garbage), PreconditionError);
}

TEST(IoResult, RefusesToSerializeFailedResults) {
  report::JobResult failed;
  failed.status = report::JobStatus::kFailed;
  std::ostringstream os;
  EXPECT_THROW(write_result_json(os, sample_job(), failed, "adpcm"),
               PreconditionError);
}

}  // namespace
}  // namespace casa::io

#include <gtest/gtest.h>

#include <sstream>

#include "casa/core/allocator.hpp"
#include "casa/io/serialize.hpp"

namespace casa::io {
namespace {

conflict::ConflictGraph sample_graph() {
  std::vector<conflict::Edge> edges{
      {MemoryObjectId(0), MemoryObjectId(1), 42},
      {MemoryObjectId(1), MemoryObjectId(0), 17},
      {MemoryObjectId(2), MemoryObjectId(0), 5}};
  return conflict::ConflictGraph(3, {1000, 800, 60}, {3, 1, 2},
                                 {955, 782, 53}, std::move(edges));
}

core::CasaProblem sample_problem(const conflict::ConflictGraph& g) {
  core::CasaProblem p;
  p.graph = &g;
  p.sizes = {64, 96, 32};
  p.capacity = 128;
  p.e_cache_hit = 0.8;
  p.e_cache_miss = 31.5;
  p.e_spm = 0.3;
  return p;
}

TEST(IoGraph, RoundTripPreservesEverything) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_conflict_graph(ss, g);
  const auto g2 = read_conflict_graph(ss);

  ASSERT_EQ(g2.node_count(), g.node_count());
  ASSERT_EQ(g2.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const MemoryObjectId mo(static_cast<std::uint32_t>(i));
    EXPECT_EQ(g2.fetches(mo), g.fetches(mo));
    EXPECT_EQ(g2.cold_misses(mo), g.cold_misses(mo));
    EXPECT_EQ(g2.hits(mo), g.hits(mo));
  }
  EXPECT_EQ(g2.miss_weight(MemoryObjectId(0), MemoryObjectId(1)), 42u);
  EXPECT_EQ(g2.miss_weight(MemoryObjectId(1), MemoryObjectId(0)), 17u);
}

TEST(IoGraph, RejectsBadHeader) {
  std::stringstream ss("casa-conflict-graph v999\nnodes 0\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsOutOfRangeEdge) {
  std::stringstream ss(
      "casa-conflict-graph v1\nnodes 1\n"
      "node 0 fetches 1 cold 0 hits 1\nedge 0 7 3\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsMissingEnd) {
  std::stringstream ss(
      "casa-conflict-graph v1\nnodes 1\nnode 0 fetches 1 cold 0 hits 1\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoGraph, RejectsNodeCountMismatch) {
  std::stringstream ss("casa-conflict-graph v1\nnodes 2\n"
                       "node 0 fetches 1 cold 0 hits 1\nend\n");
  EXPECT_THROW(read_conflict_graph(ss), PreconditionError);
}

TEST(IoProblem, RoundTripSolvesIdentically) {
  const auto g = sample_graph();
  const auto p = sample_problem(g);

  std::stringstream ss;
  write_problem(ss, p);
  const LoadedProblem loaded = read_problem(ss);

  EXPECT_EQ(loaded.problem.capacity, p.capacity);
  EXPECT_EQ(loaded.problem.sizes, p.sizes);
  EXPECT_DOUBLE_EQ(loaded.problem.e_cache_hit, p.e_cache_hit);

  const core::AllocationResult a = core::CasaAllocator().allocate(p);
  const core::AllocationResult b =
      core::CasaAllocator().allocate(loaded.problem);
  EXPECT_EQ(a.on_spm, b.on_spm);
  EXPECT_NEAR(a.predicted_energy, b.predicted_energy, 1e-6);
}

TEST(IoProblem, LoadedProblemOwnsItsGraph) {
  std::stringstream ss;
  {
    const auto g = sample_graph();
    write_problem(ss, sample_problem(g));
  }  // original graph destroyed
  const LoadedProblem loaded = read_problem(ss);
  EXPECT_EQ(loaded.problem.graph, loaded.graph.get());
  EXPECT_EQ(loaded.graph->node_count(), 3u);
}

TEST(IoProblem, RejectsCorruptEnergyLine) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_problem(ss, sample_problem(g));
  std::string text = ss.str();
  const auto pos = text.find("energy hit");
  text.replace(pos, 10, "energy pot");
  std::stringstream bad(text);
  EXPECT_THROW(read_problem(bad), PreconditionError);
}

TEST(IoAllocation, RoundTrip) {
  const std::vector<bool> mask{true, false, true, false, false, true};
  std::stringstream ss;
  write_allocation(ss, mask);
  EXPECT_EQ(read_allocation(ss), mask);
}

TEST(IoAllocation, EmptyMask) {
  const std::vector<bool> mask(4, false);
  std::stringstream ss;
  write_allocation(ss, mask);
  EXPECT_EQ(read_allocation(ss), mask);
}

TEST(IoAllocation, RejectsIndexOutOfRange) {
  std::stringstream ss("casa-allocation v1\nobjects 2\nspm 5\nend\n");
  EXPECT_THROW(read_allocation(ss), PreconditionError);
}

TEST(Io, WhitespaceAndBlankLinesTolerated) {
  const auto g = sample_graph();
  std::stringstream ss;
  write_conflict_graph(ss, g);
  std::stringstream padded("\n\n" + ss.str());
  EXPECT_NO_THROW(read_conflict_graph(padded));
}

}  // namespace
}  // namespace casa::io

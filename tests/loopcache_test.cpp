#include <gtest/gtest.h>

#include "casa/loopcache/ross_allocator.hpp"
#include "casa/prog/builder.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"

namespace casa::loopcache {
namespace {

using prog::FunctionScope;
using prog::ProgramBuilder;

struct TestRig {
  prog::Program program;
  trace::ExecutionResult exec;
  traceopt::TraceProgram tp;
  traceopt::Layout layout;
  std::vector<Region> regions;

  explicit TestRig(prog::Program p)
      : program(std::move(p)),
        exec(trace::Executor::run(program)),
        tp(traceopt::form_traces(program, exec.profile, topts())),
        layout(traceopt::layout_all(tp)),
        regions(enumerate_regions(tp, layout, exec.profile)) {}

  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 256;
    return o;
  }
};

TestRig two_loops() {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.code(16, "pre");
    f.loop(1000, [](FunctionScope& l) { l.code(64, "hot"); });
    f.loop(10, [](FunctionScope& l) { l.code(64, "warm"); });
    f.call("helper");
  });
  b.function("helper", [](FunctionScope& f) {
    f.loop(5, [](FunctionScope& l) { l.code(32, "h"); });
  });
  return TestRig(b.build());
}

TEST(Regions, EnumeratesLoopsAndFunctions) {
  const TestRig s = two_loops();
  // 3 loops + 2 functions.
  EXPECT_EQ(s.regions.size(), 5u);
  int loops = 0, funcs = 0;
  for (const Region& r : s.regions) {
    if (r.label.rfind("loop@", 0) == 0) ++loops;
    if (r.label.rfind("func:", 0) == 0) ++funcs;
  }
  EXPECT_EQ(loops, 3);
  EXPECT_EQ(funcs, 2);
}

TEST(Regions, FetchCountsMatchProfile) {
  const TestRig s = two_loops();
  for (const Region& r : s.regions) {
    if (r.label == "func:helper") {
      // helper: header 2w + 5*(body 8w + latch 2w) = 52 words
      EXPECT_EQ(r.fetches, 52u);
    }
  }
}

TEST(Regions, RangesAreWithinLayout) {
  const TestRig s = two_loops();
  for (const Region& r : s.regions) {
    EXPECT_LT(r.lo, r.hi);
    EXPECT_LE(r.hi, s.layout.base() + s.layout.span());
  }
}

TEST(Ross, SelectsHottestDensityFirst) {
  const TestRig s = two_loops();
  LoopCacheConfig cfg;
  cfg.size = 128;
  cfg.max_regions = 1;
  const RossResult r = allocate_ross(s.regions, cfg);
  ASSERT_EQ(r.selected.regions().size(), 1u);
  // The 1000-trip loop dominates density.
  EXPECT_GT(r.covered_fetches, 10000u);
}

TEST(Ross, RespectsRegionCountLimit) {
  const TestRig s = two_loops();
  LoopCacheConfig cfg;
  cfg.size = 4096;
  cfg.max_regions = 2;
  const RossResult r = allocate_ross(s.regions, cfg);
  EXPECT_LE(r.selected.regions().size(), 2u);
}

TEST(Ross, RespectsCapacity) {
  const TestRig s = two_loops();
  LoopCacheConfig cfg;
  cfg.size = 96;
  cfg.max_regions = 4;
  const RossResult r = allocate_ross(s.regions, cfg);
  EXPECT_LE(r.used_bytes, 96u);
}

TEST(Ross, SkipsOverlappingNestedRegions) {
  // A function region overlaps its loops; selecting both is invalid.
  const TestRig s = two_loops();
  LoopCacheConfig cfg;
  cfg.size = 8192;
  cfg.max_regions = 8;
  const RossResult r = allocate_ross(s.regions, cfg);
  const auto& sel = r.selected.regions();
  for (std::size_t i = 0; i < sel.size(); ++i) {
    for (std::size_t j = i + 1; j < sel.size(); ++j) {
      EXPECT_FALSE(sel[i].overlaps(sel[j]));
    }
  }
}

TEST(Ross, IgnoresColdRegions) {
  ProgramBuilder b("p");
  b.function("main", [](FunctionScope& f) {
    f.code(16, "x");
    f.if_then(0.0, [](FunctionScope& t) {
      t.loop(100, [](FunctionScope& l) { l.code(32, "dead"); });
    });
  });
  const TestRig s{b.build()};
  LoopCacheConfig cfg;
  cfg.size = 4096;
  cfg.max_regions = 4;
  const RossResult r = allocate_ross(s.regions, cfg);
  for (const Region& sel : r.selected.regions()) {
    EXPECT_GT(sel.fetches, 0u);
  }
}

TEST(RegionSet, MembershipQueries) {
  RegionSet set({Region{0, 32, 1, "a"}, Region{64, 96, 1, "b"}});
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(31));
  EXPECT_FALSE(set.contains(32));
  EXPECT_FALSE(set.contains(63));
  EXPECT_TRUE(set.contains(64));
  EXPECT_FALSE(set.contains(96));
  EXPECT_EQ(set.total_size(), 64u);
}

TEST(RegionSet, RejectsOverlaps) {
  EXPECT_THROW(RegionSet({Region{0, 32, 1, "a"}, Region{16, 48, 1, "b"}}),
               PreconditionError);
}

TEST(Region, OverlapPredicate) {
  const Region a{0, 32, 1, "a"};
  const Region b{32, 64, 1, "b"};
  const Region c{16, 48, 1, "c"};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

}  // namespace
}  // namespace casa::loopcache

#!/usr/bin/env bash
# Fault-injection containment gate (docs/faults.md).
#
# Drives casa_cli end-to-end under CASA_FAULT_SPEC/--fault-spec and holds
# the containment contract at the process boundary:
#   * run A: fault-free baseline — the CSV row every injected run must
#     still reproduce bit-for-bit (injection may slow a run, never change
#     surviving results);
#   * run B: a one-shot transient on fault.io.metrics_write — exit 0, the
#     CSV row identical to A, and the metrics artifact is valid JSON whose
#     own counters report the injection (fault.injected >= 1,
#     io.artifact_retries >= 1) plus the fault.armed_sites gauge;
#   * run C: a one-shot corrupt on the same site — the corruption must be
#     detected before the sink, retried, and the committed artifact clean
#     (byte-identical counters to a parse, not a flipped byte on disk);
#   * run D: a permanent throw at fault.solver.allocate — non-zero exit,
#     the injected site named on stderr;
#   * run E: a spec naming an unregistered site — rejected up front with
#     the registered-site list, before any simulation runs.
#
# Registered as a ctest (fault_check); exits 77 (ctest SKIP) on hosts
# without python3, hard-fails on a missing casa_cli binary.
#
# Usage:
#   tools/fault_check.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cli="$build_dir/tools/casa_cli"
if [[ ! -x "$cli" ]]; then
  echo "fault_check: FAIL — casa_cli binary missing: $cli" >&2
  echo "  build it first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "fault_check: SKIP — python3 not found on this host" >&2
  exit 77
fi

csv_a="$(mktemp /tmp/fault_check_a.XXXXXX.csv)"
csv_b="$(mktemp /tmp/fault_check_b.XXXXXX.csv)"
csv_c="$(mktemp /tmp/fault_check_c.XXXXXX.csv)"
metrics_b="$(mktemp /tmp/fault_check_b.XXXXXX.json)"
metrics_c="$(mktemp /tmp/fault_check_c.XXXXXX.json)"
err_d="$(mktemp /tmp/fault_check_d.XXXXXX.txt)"
err_e="$(mktemp /tmp/fault_check_e.XXXXXX.txt)"
trap 'rm -f "$csv_a" "$csv_b" "$csv_c" "$metrics_b" "$metrics_c" \
            "$err_d" "$err_e"' EXIT

common=(--workload=adpcm --technique=casa --spm=256 --ilp-threads=1 --csv)

echo "fault_check: run A — fault-free baseline"
"$cli" "${common[@]}" > "$csv_a"

echo "fault_check: run B — transient on fault.io.metrics_write"
"$cli" "${common[@]}" \
       --fault-spec="site=fault.io.metrics_write,action=transient,count=1" \
       --metrics-json "$metrics_b" > "$csv_b"

echo "fault_check: run C — corrupt on fault.io.metrics_write"
"$cli" "${common[@]}" \
       --fault-spec="site=fault.io.metrics_write,action=corrupt,count=1" \
       --metrics-json "$metrics_c" > "$csv_c"

if ! cmp -s "$csv_a" "$csv_b"; then
  echo "fault_check: FAIL — transient-injected run changed the CSV row" >&2
  diff "$csv_a" "$csv_b" >&2 || true
  exit 1
fi
if ! cmp -s "$csv_a" "$csv_c"; then
  echo "fault_check: FAIL — corrupt-injected run changed the CSV row" >&2
  diff "$csv_a" "$csv_c" >&2 || true
  exit 1
fi

echo "fault_check: run D — permanent throw at fault.solver.allocate"
if "$cli" "${common[@]}" \
       --fault-spec="site=fault.solver.allocate,action=throw" \
       2> "$err_d"; then
  echo "fault_check: FAIL — injected solver fault exited 0" >&2
  exit 1
fi
if ! grep -q "injected fault at fault.solver.allocate" "$err_d"; then
  echo "fault_check: FAIL — stderr does not name the injected site:" >&2
  cat "$err_d" >&2
  exit 1
fi

echo "fault_check: run E — unregistered site is rejected up front"
if "$cli" "${common[@]}" --fault-spec="site=fault.no.such_site" \
       2> "$err_e"; then
  echo "fault_check: FAIL — bogus fault spec exited 0" >&2
  exit 1
fi
if ! grep -q "registered sites:" "$err_e"; then
  echo "fault_check: FAIL — bad-spec error lacks the site catalogue:" >&2
  cat "$err_e" >&2
  exit 1
fi

python3 - "$metrics_b" "$metrics_c" << 'PY'
import json
import sys

failures = []


def check(path, want_retry):
    try:
        doc = json.load(open(path))
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"{path}: artifact unreadable (a corrupted byte "
                        f"reached the sink?): {e}")
        return
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    if doc.get("schema") != "casa-metrics v1":
        failures.append(f"{path}: schema is {doc.get('schema')!r}")
    if counters.get("fault.injected", 0) < 1:
        failures.append(f"{path}: fault.injected missing — the artifact "
                        "does not self-report the injection")
    if want_retry and counters.get("io.artifact_retries", 0) < 1:
        failures.append(f"{path}: io.artifact_retries missing — the retried "
                        "write did not record itself")
    if gauges.get("fault.armed_sites", 0) != 1:
        failures.append(f"{path}: fault.armed_sites gauge is "
                        f"{gauges.get('fault.armed_sites')!r}, expected 1")


check(sys.argv[1], want_retry=True)
check(sys.argv[2], want_retry=True)

if failures:
    print("fault_check: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("fault_check: artifact self-reporting OK")
PY

echo "fault_check: OK — injected runs contained, survivors bit-identical"

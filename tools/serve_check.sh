#!/usr/bin/env bash
# Evaluation-service smoke gate (docs/serve.md).
#
# Drives casa_serve end-to-end over the JSON-lines protocol and holds the
# serving contract at the process boundary:
#   * run A: evaluate -> re-evaluate in one session — the second response
#     is flagged "hit" and is byte-identical to the miss apart from that
#     provenance tag (the warm-cache byte-identity contract), and the
#     stats line reconciles (requests/hits/misses/cache_entries);
#   * run B: a fresh process over run A's --persist directory — the first
#     response is already a "hit" served from the persisted casa-result v1
#     artifact, with the same outcome bytes as run A's miss;
#   * run C: the persisted artifact corrupted on disk — the service
#     degrades to a recompute (status ok, provenance miss, persist_errors
#     counted), never to a crash or a wrong answer;
#   * run D: a one-shot throw at fault.svc.admit — the faulted request
#     fails with error_kind "fault", and the same session then answers the
#     retry cleanly (the service outlives injected admission faults);
#   * run E: malformed requests (bad JSON, unknown op, empty batch) — one
#     error line each, and the session keeps serving afterwards.
#
# Registered as a ctest (serve_check); exits 77 (ctest SKIP) on hosts
# without python3, hard-fails on a missing casa_serve binary.
#
# Usage:
#   tools/serve_check.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

serve="$build_dir/tools/casa_serve"
if [[ ! -x "$serve" ]]; then
  echo "serve_check: FAIL — casa_serve binary missing: $serve" >&2
  echo "  build it first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "serve_check: SKIP — python3 not found on this host" >&2
  exit 77
fi

workdir="$(mktemp -d /tmp/serve_check.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT
persist="$workdir/persist"

job='{"kind":"steinke","size":256}'
evaluate="{\"op\":\"evaluate\",\"workload\":\"adpcm\",\"job\":$job}"

echo "serve_check: run A — warm-cache byte-identity in one session"
printf '%s\n' "$evaluate" "$evaluate" '{"op":"stats"}' \
  | "$serve" --persist="$persist" > "$workdir/a.txt"
python3 - "$workdir/a.txt" << 'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
results = [l for l in lines if l.get("reply") == "result"]
assert len(results) == 2, f"expected 2 results, got {len(results)}"
miss, hit = results
assert miss["status"] == "ok" and miss["provenance"] == "miss", miss
assert hit["status"] == "ok" and hit["provenance"] == "hit", hit
raw = [l for l in open(sys.argv[1]) if '"reply":"result"' in l]
normalized = raw[1].replace('"provenance":"hit"', '"provenance":"miss"')
assert normalized == raw[0], "hit response differs beyond the provenance tag"
stats = [l for l in lines if l.get("reply") == "stats"][0]
assert stats["requests"] == 2 and stats["hits"] == 1 and stats["misses"] == 1
assert stats["cache_entries"] == 1, stats
print("serve_check: run A ok — hit byte-identical to miss up to provenance")
EOF
miss_line="$(grep '"provenance":"miss"' "$workdir/a.txt")"

echo "serve_check: run B — persisted artifact served across processes"
printf '%s\n' "$evaluate" '{"op":"stats"}' \
  | "$serve" --persist="$persist" > "$workdir/b.txt"
python3 - "$workdir/b.txt" "$miss_line" << 'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
result = [l for l in lines if l.get("reply") == "result"][0]
assert result["status"] == "ok" and result["provenance"] == "hit", result
assert result["outcome"] == json.loads(sys.argv[2])["outcome"], \
    "persisted outcome differs from the originally computed one"
stats = [l for l in lines if l.get("reply") == "stats"][0]
assert stats["persist_loads"] == 1 and stats["misses"] == 0, stats
print("serve_check: run B ok — cold process hit from casa-result v1")
EOF

echo "serve_check: run C — corrupted persistence degrades to recompute"
for f in "$persist"/*.json; do
  head -c 40 "$f" > "$f.tmp" && mv "$f.tmp" "$f"
done
printf '%s\n' "$evaluate" '{"op":"stats"}' \
  | "$serve" --persist="$persist" > "$workdir/c.txt"
python3 - "$workdir/c.txt" "$miss_line" << 'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
result = [l for l in lines if l.get("reply") == "result"][0]
assert result["status"] == "ok" and result["provenance"] == "miss", result
assert result["outcome"] == json.loads(sys.argv[2])["outcome"], \
    "recomputed outcome differs from the original"
stats = [l for l in lines if l.get("reply") == "stats"][0]
assert stats["persist_errors"] == 1, stats
print("serve_check: run C ok — corrupt artifact recomputed, error counted")
EOF

echo "serve_check: run D — admission fault contained to one request"
printf '%s\n' "$evaluate" "$evaluate" '{"op":"stats"}' \
  | "$serve" --fault-spec='site=fault.svc.admit,action=throw,count=1' \
  > "$workdir/d.txt"
python3 - "$workdir/d.txt" << 'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
results = [l for l in lines if l.get("reply") == "result"]
assert len(results) == 2, results
assert results[0]["status"] == "failed", results[0]
assert results[0]["error_kind"] == "fault", results[0]
assert results[1]["status"] == "ok" and results[1]["provenance"] == "miss"
stats = [l for l in lines if l.get("reply") == "stats"][0]
assert stats["requests"] == 2, stats
print("serve_check: run D ok — faulted request failed alone, service alive")
EOF

echo "serve_check: run E — malformed requests answered, session survives"
printf '%s\n' 'this is not json' '{"op":"teleport"}' \
  '{"op":"batch","workload":"adpcm","jobs":[]}' '{"op":"stats"}' \
  | "$serve" > "$workdir/e.txt"
python3 - "$workdir/e.txt" << 'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
errors = [l for l in lines if l.get("reply") == "error"]
assert len(errors) == 3, f"expected 3 error lines, got {len(errors)}"
stats = [l for l in lines if l.get("reply") == "stats"]
assert len(stats) == 1, "stats must still be answered after bad requests"
print("serve_check: run E ok — three error lines, then normal service")
EOF

echo "serve_check: PASS"

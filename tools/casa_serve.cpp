// casa_serve — a persistent evaluation service over JSON lines.
//
//   casa_serve                          # serve requests on stdin/stdout
//   casa_serve --tcp=7777               # serve one client at a time on TCP
//   casa_serve --persist=./cache        # persist results as casa-result v1
//   casa_serve --cache-bytes=1048576 --max-inflight=8 --verify-sample=10
//
// Requests are one JSON object per line (docs/serve.md):
//
//   {"op":"evaluate","workload":"adpcm","job":{"kind":"casa","size":512}}
//   {"op":"batch","workload":"adpcm","jobs":[...]}
//   {"op":"sweep","workload":"adpcm","spm":[256,512],"flows":["casa"]}
//   {"op":"stats"}
//   {"op":"flush"}
//
// Every evaluated job answers with one result line carrying its status,
// attempts, and cache provenance (hit | miss | inflight_join); each
// request ends with a `done` line. The Workbench for a workload is built
// once (the profiling run) and reused for the life of the process — the
// point of serving instead of re-running casa_cli per configuration.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/io/serialize.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/support/args.hpp"
#include "casa/support/error.hpp"
#include "casa/svc/protocol.hpp"
#include "casa/svc/service.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace casa;

namespace {

/// Handles one request line; the reply text goes to `os` (responses for a
/// request are rendered atomically so a TCP client never sees a torn
/// reply). Malformed requests answer with an error line — the service
/// never dies on bad input.
void handle_line(svc::EvalService& service, const std::string& line,
                 std::ostream& os) {
  try {
    const svc::Request req = svc::parse_request(line);
    switch (req.op) {
      case svc::Request::Op::kStats:
        svc::write_stats_line(os, service.stats());
        return;
      case svc::Request::Op::kFlush:
        service.flush();
        svc::write_ok_line(os);
        return;
      case svc::Request::Op::kEvaluate:
      case svc::Request::Op::kBatch:
      case svc::Request::Op::kSweep: {
        const std::vector<svc::EvalResponse> responses =
            service.evaluate_batch(req.workload, req.jobs);
        for (std::size_t i = 0; i < responses.size(); ++i) {
          svc::write_response_line(os, i, responses[i]);
        }
        svc::write_done_line(os, responses.size());
        return;
      }
    }
  } catch (const std::exception& e) {
    svc::write_error_line(os, e.what());
  }
}

/// stdin/stdout (or any stream pair) request loop.
void serve_stream(svc::EvalService& service, std::istream& in,
                  std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    handle_line(service, line, out);
    out.flush();
  }
}

/// Minimal single-client TCP loop: accept, serve line-by-line until the
/// client disconnects, accept the next. Returns only on accept failure.
int serve_tcp(svc::EvalService& service, std::uint16_t port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  CASA_CHECK(listener >= 0, "casa_serve: cannot create socket");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  CASA_CHECK(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0,
             "casa_serve: cannot bind 127.0.0.1:" + std::to_string(port));
  CASA_CHECK(::listen(listener, 1) == 0, "casa_serve: listen failed");
  std::cerr << "casa_serve listening on 127.0.0.1:" << port << "\n";
  for (;;) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    std::string pending;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(client, buf, sizeof buf);
      if (n <= 0) break;
      pending.append(buf, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = pending.find('\n', start);
           nl != std::string::npos; nl = pending.find('\n', start)) {
        const std::string line = pending.substr(start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        std::ostringstream reply;
        handle_line(service, line, reply);
        const std::string text = std::move(reply).str();
        std::size_t sent = 0;
        while (sent < text.size()) {
          const ssize_t w =
              ::write(client, text.data() + sent, text.size() - sent);
          if (w <= 0) break;
          sent += static_cast<std::size_t>(w);
        }
      }
      pending.erase(0, start);
    }
    ::close(client);
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::uint64_t tcp_port =
      args.get_u64("tcp", 0, "serve on 127.0.0.1:PORT instead of stdio");
  const std::uint64_t cache_bytes = args.get_u64(
      "cache-bytes", 64ull << 20, "result cache byte budget (keys+artifacts)");
  const std::uint64_t threads =
      args.get_u64("threads", 0, "miss-evaluation worker threads (0 = auto)");
  const std::uint64_t max_inflight = args.get_u64(
      "max-inflight", 64, "max jobs computing at once before rejection");
  const std::uint64_t retry_after_ms = args.get_u64(
      "retry-after-ms", 50, "retry hint attached to rejected responses");
  const std::uint64_t max_retries =
      args.get_u64("max-retries", 0, "per-job transient-failure retries");
  const std::string persist_dir =
      args.get("persist", "", "persist results as casa-result v1 files here");
  const std::uint64_t verify_sample = args.get_u64(
      "verify-sample", 0, "recompute and bit-compare every Nth cache hit");
  const std::uint64_t seed = args.get_u64("seed", 42, "execution seed");
  const double fuse = args.get_double("fuse", 0.5, "trace fusion ratio");
  const std::string metrics_json = args.get(
      "metrics-json", "", "write a casa-metrics artifact here on exit");
  const std::string fault_spec =
      args.get("fault-spec", "", "arm fault injection (see docs/faults.md)");

  if (args.help_requested()) {
    std::cout << "casa_serve — persistent evaluation service (JSON lines)\n\n"
              << args.help();
    return 0;
  }
  try {
    args.reject_unknown();
  } catch (const PreconditionError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 2;
  }

  try {
    if (!fault_spec.empty()) {
      fault::arm(fault::parse_spec(fault_spec));
    } else {
      fault::arm_from_env();
    }

    obs::MetricsRegistry registry;
    svc::ServiceOptions opt;
    opt.cache_bytes = cache_bytes;
    opt.threads = static_cast<unsigned>(threads);
    opt.max_retries = static_cast<unsigned>(max_retries);
    opt.max_inflight = max_inflight;
    opt.retry_after_ms = static_cast<unsigned>(retry_after_ms);
    opt.persist_dir = persist_dir;
    opt.verify_sample = static_cast<unsigned>(verify_sample);
    opt.exec_seed = seed;
    opt.fuse_ratio = fuse;
    opt.metrics = &registry;
    if (fault::armed()) {
      registry.set_gauge(obs::metric_names::kFaultArmedSites,
                         static_cast<double>(fault::armed_site_count()));
    }
    svc::EvalService service(opt);

    int rc = 0;
    if (tcp_port != 0) {
      rc = serve_tcp(service, static_cast<std::uint16_t>(tcp_port));
    } else {
      serve_stream(service, std::cin, std::cout);
    }

    if (!metrics_json.empty()) {
      std::ofstream out(metrics_json);
      CASA_CHECK(out.good(),
                 "cannot open metrics output file: " + metrics_json);
      obs::ArtifactOptions aopt;
      aopt.tool = "casa_serve";
      obs::write_artifact_guarded(
          out, fault::site_names::kIoMetricsWrite,
          [&](std::ostream& os) {
            io::write_metrics_json(os, registry.snapshot(), aopt);
          });
      std::cerr << "metrics artifact written to " << metrics_json << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "casa_serve: " << e.what() << "\n";
    return 1;
  }
}

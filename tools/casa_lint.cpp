// casa_lint — source-level analyzer for the casa tree.
//
// Walks src/casa/**/*.{hpp,cpp} and tools/*.cpp, lexes every file with the
// preprocessor/string/comment-aware tokenizer, derives the include-layering
// model from the per-module CMakeLists, loads the docs catalogues, and runs
// every lint rule family. Output: human-readable diagnostics on stdout, a
// "casa-lint v1" JSON artifact via --json, and a machine-readable fix list
// via --fix-list. Exit status: 0 clean (warnings allowed), 1 any error
// diagnostic, 2 usage/environment failure.
#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "casa/lint/rules.hpp"
#include "casa/lint/runner.hpp"
#include "casa/lint/source.hpp"
#include "casa/support/args.hpp"
#include "casa/support/error.hpp"

namespace {

namespace fs = std::filesystem;

std::string rel_path(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

bool lintable_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

std::string read_text_or_empty(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

casa::lint::TreeInputs load_tree(const fs::path& root) {
  casa::lint::TreeInputs inputs;

  std::vector<fs::path> sources;
  const fs::path src_casa = root / "src" / "casa";
  CASA_CHECK(fs::is_directory(src_casa),
             "casa_lint: no src/casa under --root " + root.string());
  for (const auto& entry : fs::recursive_directory_iterator(src_casa)) {
    if (entry.is_regular_file() && lintable_source(entry.path())) {
      sources.push_back(entry.path());
    }
  }
  const fs::path tools = root / "tools";
  if (fs::is_directory(tools)) {
    for (const auto& entry : fs::directory_iterator(tools)) {
      if (entry.is_regular_file() &&
          entry.path().extension() == ".cpp") {
        sources.push_back(entry.path());
      }
    }
  }
  std::sort(sources.begin(), sources.end());
  inputs.files.reserve(sources.size());
  for (const fs::path& p : sources) {
    inputs.files.push_back(casa::lint::parse_source(
        casa::lint::load_source(p.string(), rel_path(p, root))));
  }

  std::vector<casa::lint::SourceFile> cmake_files;
  for (const auto& entry : fs::directory_iterator(src_casa)) {
    const fs::path cml = entry.path() / "CMakeLists.txt";
    if (entry.is_directory() && fs::is_regular_file(cml)) {
      cmake_files.push_back(
          casa::lint::load_source(cml.string(), rel_path(cml, root)));
    }
  }
  std::sort(cmake_files.begin(), cmake_files.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });
  inputs.layers = casa::lint::parse_layer_model(cmake_files);

  inputs.docs.metrics = read_text_or_empty(root / "docs" / "metrics.md");
  inputs.docs.tracing = read_text_or_empty(root / "docs" / "tracing.md");
  inputs.docs.checks = read_text_or_empty(root / "docs" / "checks.md");
  inputs.docs.faults = read_text_or_empty(root / "docs" / "faults.md");
  inputs.docs.lint = read_text_or_empty(root / "docs" / "lint.md");
  return inputs;
}

void write_file_or_stdout(const std::string& path,
                          const std::function<void(std::ostream&)>& emit) {
  if (path == "-") {
    emit(std::cout);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  CASA_CHECK(out.good(), "casa_lint: cannot write " + path);
  emit(out);
  CASA_CHECK(out.good(), "casa_lint: write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    casa::ArgParser args(argc, argv);
    const std::string root_arg =
        args.get("root", ".", "repository root to lint");
    const std::string json_path =
        args.get("json", "", "write the casa-lint v1 JSON artifact here "
                             "('-' for stdout)");
    const std::string fix_path =
        args.get("fix-list", "", "write file:line:col\\trule\\thint lines "
                                 "here ('-' for stdout)");
    const bool quiet =
        args.get_flag("quiet", "suppress per-diagnostic output");
    if (args.help_requested()) {
      std::cout << "casa_lint: source-level analyzer for the casa tree\n"
                << args.help();
      return 0;
    }
    args.reject_unknown();

    const fs::path root = fs::path(root_arg);
    casa::lint::TreeInputs inputs = load_tree(root);
    casa::lint::LintRunner runner;
    casa::lint::run_all_rules(inputs, runner);

    if (!quiet) {
      for (const casa::lint::Diagnostic& d : runner.diagnostics()) {
        std::cout << d.to_string() << "\n";
      }
    }
    if (!json_path.empty()) {
      write_file_or_stdout(json_path, [&](std::ostream& os) {
        casa::lint::write_lint_json(os, runner);
      });
    }
    if (!fix_path.empty()) {
      write_file_or_stdout(fix_path, [&](std::ostream& os) {
        casa::lint::write_fix_list(os, runner);
      });
    }
    std::cout << runner.summary() << "\n";
    return runner.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "casa_lint: " << e.what() << "\n";
    return 2;
  }
}

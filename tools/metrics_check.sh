#!/usr/bin/env bash
# Telemetry artifact schema gate.
#
# Runs casa_cli with --metrics-json on the quickstart workload (adpcm /
# CASA) and validates the emitted "casa-metrics v1" artifact:
#   * every top-level key is present and the schema string matches;
#   * run provenance fields are non-empty strings;
#   * every counter is a non-negative integer, every phase/distribution
#     summary has count >= 1 and min <= max;
#   * all five pipeline phases appear under run_casa and their wall times
#     sum to no more than the enclosing run_casa span;
#   * the headline counters the paper's tables are built from exist
#     (cache hits/misses, solver nodes, conflict edges).
# Failures name the violated key. Registered as a ctest (metrics_check) so
# schema drift fails the suite, not just downstream scripts.
#
# Usage:
#   tools/metrics_check.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cli="$build_dir/tools/casa_cli"
if [[ ! -x "$cli" ]]; then
  echo "metrics_check: FAIL — casa_cli binary missing: $cli" >&2
  echo "  build it first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

artifact="$(mktemp /tmp/metrics_check.XXXXXX.json)"
trap 'rm -f "$artifact"' EXIT

echo "metrics_check: running $cli --workload=adpcm --technique=casa"
"$cli" --workload=adpcm --technique=casa --spm=256 \
       --metrics-json "$artifact" > /dev/null

python3 - "$artifact" <<'EOF'
import json, sys

path = sys.argv[1]
failures = []


def fail(key, why):
    failures.append(f"{key}: {why}")


try:
    doc = json.load(open(path))
except (OSError, json.JSONDecodeError) as e:
    print(f"metrics_check: FAIL\n  - artifact {path} unreadable: {e}")
    sys.exit(1)

for key in ("schema", "run", "config", "phases", "counters", "gauges",
            "distributions"):
    if key not in doc:
        fail(key, "missing from artifact")
if doc.get("schema") != "casa-metrics v1":
    fail("schema", f"expected 'casa-metrics v1', got {doc.get('schema')!r}")

for key in ("tool", "git", "build_type", "compiler"):
    v = doc.get("run", {}).get(key)
    if not isinstance(v, str) or not v:
        fail(f"run.{key}", f"must be a non-empty string, got {v!r}")

for key, v in doc.get("counters", {}).items():
    if not isinstance(v, int) or v < 0:
        fail(f"counters.{key}", f"must be a non-negative integer, got {v!r}")

for kind in ("phases", "distributions"):
    for key, s in doc.get(kind, {}).items():
        sum_key = "seconds" if kind == "phases" else "sum"
        for field in ("count", sum_key, "min", "max"):
            if field not in s:
                fail(f"{kind}.{key}.{field}", "missing")
        if s.get("count", 0) < 1:
            fail(f"{kind}.{key}.count", f"must be >= 1, got {s.get('count')!r}")
        if s.get("min", 0) > s.get("max", 0):
            fail(f"{kind}.{key}", f"min {s['min']} > max {s['max']}")
        if s.get(sum_key, 0) < 0:
            fail(f"{kind}.{key}.{sum_key}", f"negative: {s.get(sum_key)!r}")

phases = doc.get("phases", {})
stage_names = ("trace_formation", "layout", "conflict_graph", "allocation",
               "simulation")
for stage in stage_names:
    if f"run_casa/{stage}" not in phases:
        fail(f"phases.run_casa/{stage}", "pipeline stage missing")
if "run_casa" in phases:
    child_sum = sum(phases[f"run_casa/{s}"]["seconds"]
                    for s in stage_names if f"run_casa/{s}" in phases)
    total = phases["run_casa"]["seconds"]
    # 1ms slack: the parent span also covers inter-stage glue, so children
    # must never exceed it by more than clock resolution.
    if child_sum > total + 1e-3:
        fail("phases.run_casa",
             f"child phases sum to {child_sum:.6f}s > total {total:.6f}s")
else:
    fail("phases.run_casa", "flow span missing")

for key in ("cache.hits", "cache.misses", "solver.nodes", "conflict.edges",
            "sim.fetches"):
    if key not in doc.get("counters", {}):
        fail(f"counters.{key}", "headline counter missing")

if failures:
    print("metrics_check: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

n = len(doc["counters"])
print(f"metrics_check: OK ({n} counters, {len(phases)} phase summaries)")
EOF

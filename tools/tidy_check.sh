#!/usr/bin/env bash
# clang-tidy lint gate.
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit listed in the build tree's
# compile_commands.json. Any warning fails the gate (WarningsAsErrors is
# '*' in the config). On hosts without clang-tidy the script exits 77 —
# ctest registers that as SKIP via SKIP_RETURN_CODE, so the lane is
# visibly skipped instead of silently green.
#
# Usage:
#   tools/tidy_check.sh [--build-dir DIR]
# Environment:
#   CLANG_TIDY  explicit clang-tidy binary (overrides PATH lookup)
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

tidy="${CLANG_TIDY:-}"
if [[ -z "$tidy" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy" ]]; then
  echo "tidy_check: clang-tidy not found (set CLANG_TIDY to override); skipping" >&2
  exit 77
fi

db="$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "tidy_check: $db not found; configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# First-party sources only: the compilation database also lists GTest /
# benchmark glue we do not own.
mapfile -t sources < <(
  cd "$repo_root" &&
  find src tools examples -name '*.cpp' | sort
)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "tidy_check: no sources found" >&2
  exit 2
fi

echo "tidy_check: $tidy over ${#sources[@]} files"
status=0
for rel in "${sources[@]}"; do
  if ! "$tidy" --quiet -p "$build_dir" "$repo_root/$rel"; then
    status=1
    echo "tidy_check: FAIL $rel" >&2
  fi
done
if [[ "$status" -ne 0 ]]; then
  echo "tidy_check: clang-tidy reported findings" >&2
  exit 1
fi
echo "tidy_check: OK"

#!/usr/bin/env bash
# Benchmark regression gate.
#
# Runs build/bench/cachesim_throughput with a short measurement window and
# compares every benchmark's items_per_second against the checked-in
# baseline (BENCH_cachesim.json at the repo root). Fails when any benchmark
# regresses by more than TOLERANCE (default 20%). Also asserts three
# current-run invariants: BM_ConflictGraphBuild must stay >= 2x
# BM_ConflictGraphBuildWordRef (compiled streams), BM_StackSweep must
# stay >= 3x BM_StackSweepPerConfigRef (one-pass multi-config simulation),
# BM_TraceOverheadNull must stay >= 0.85x BM_TraceOverheadOff (a
# detached obs::Span is within measurement noise of no span at all),
# BM_FaultCheckOff must stay >= 0.85x BM_TraceOverheadOff (a disarmed
# fault::at site is one relaxed load), and BM_ServeCacheHit must stay
# >= 10x BM_ServeCacheMiss (a content-addressed serve-cache hit beats
# recomputing the job).
#
# The baseline records the CMAKE_BUILD_TYPE of the build tree it was taken
# from (read from CMakeCache.txt, NOT from google-benchmark's self-reported
# library_build_type, which describes the benchmark library only). A
# compare run against a tree built with a different CMAKE_BUILD_TYPE fails
# immediately: Debug-vs-Release throughput deltas would otherwise drown any
# real regression.
#
# Additionally runs the solver benchmark (build/bench/ilp_runtime,
# BM_GenericIlpWarmStarted — the production solver configuration on the
# largest bundled workload) and gates it on both wall-clock (same
# tolerance) and the explored-node counter. Node counts are deterministic,
# so ANY increase over the baseline fails; an intentional search-strategy
# change must re-record with --update.
#
# BM_ParallelSweep is measured but only reported, never gated — its
# items/sec depends on the host's core count, which the baseline can't know.
#
# Usage:
#   tools/bench_check.sh [--update] [--build-dir DIR]
#     --update      rewrite BENCH_cachesim.json from this run instead of
#                   comparing (use after an intentional perf change)
#     --build-dir   where the bench binary lives (default: build)
#
# Environment:
#   BENCH_MIN_TIME  --benchmark_min_time value (default 0.2; this repo's
#                   google-benchmark wants a plain double, no "s" suffix)
#   BENCH_TOLERANCE allowed fractional regression (default 0.20)
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
update=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update) update=1; shift ;;
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

bench_bin="$build_dir/bench/cachesim_throughput"
solver_bin="$build_dir/bench/ilp_runtime"
solver_filter="BM_GenericIlpWarmStarted"
baseline="$repo_root/BENCH_cachesim.json"
min_time="${BENCH_MIN_TIME:-0.2}"
tolerance="${BENCH_TOLERANCE:-0.20}"

# The build tree's actual configuration. An unset CMAKE_BUILD_TYPE is
# recorded as "" and only matches a baseline recorded the same way.
if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "bench_check: FAIL — no CMakeCache.txt in $build_dir" >&2
  echo "  is --build-dir pointing at a configured build tree?" >&2
  exit 1
fi
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
              "$build_dir/CMakeCache.txt" | head -n 1)"

# Missing prerequisites are gate failures, not soft skips: a CI lane that
# forgets to build the bench binary or check in the baseline must go red,
# loudly, naming what is missing.
for bin in "$bench_bin" "$solver_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_check: FAIL — benchmark binary missing: $bin" >&2
    echo "  build it first: cmake -B build -G Ninja && cmake --build build" >&2
    exit 1
  fi
done

run_json="$(mktemp /tmp/bench_check.XXXXXX.json)"
solver_json="$(mktemp /tmp/bench_check_solver.XXXXXX.json)"
trap 'rm -f "$run_json" "$solver_json"' EXIT

echo "bench_check: running $bench_bin (--benchmark_min_time=$min_time)"
"$bench_bin" --benchmark_min_time="$min_time" \
             --benchmark_format=json \
             --benchmark_out="$run_json" \
             --benchmark_out_format=json > /dev/null

echo "bench_check: running $solver_bin (--benchmark_filter=$solver_filter)"
"$solver_bin" --benchmark_filter="$solver_filter" \
              --benchmark_min_time="$min_time" \
              --benchmark_format=json \
              --benchmark_out="$solver_json" \
              --benchmark_out_format=json > /dev/null

if [[ "$update" -eq 1 ]]; then
  python3 - "$run_json" "$solver_json" "$baseline" "$build_type" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
solver = json.load(open(sys.argv[2]))
out = {
    "_comment": ("Throughput baseline for tools/bench_check.sh. "
                 "items_per_second from ./build/bench/cachesim_throughput on "
                 "the recording host; regenerate with tools/bench_check.sh "
                 "--update after intentional perf changes. context.build_type "
                 "is the recording tree's CMAKE_BUILD_TYPE; compares against "
                 "a differently-configured tree fail outright."),
    "context": {
        "host_cpus": run["context"]["num_cpus"],
        "build_type": sys.argv[4],
    },
    "benchmarks": {
        b["name"]: round(b["items_per_second"], 1)
        for b in run["benchmarks"] if "items_per_second" in b
    },
    "solver": {
        b["name"]: {
            "real_time_ns": round(b["real_time"], 1),
            "nodes": int(b["nodes"]),
        }
        for b in solver["benchmarks"] if "nodes" in b
    },
}
json.dump(out, open(sys.argv[3], "w"), indent=2)
print(f"bench_check: baseline updated ({len(out['benchmarks'])} throughput, "
      f"{len(out['solver'])} solver entries, "
      f"build_type={sys.argv[4] or '(unset)'})")
EOF
  exit 0
fi

if [[ ! -f "$baseline" ]]; then
  echo "bench_check: FAIL — baseline missing: $baseline" >&2
  echo "  record one with: tools/bench_check.sh --update" >&2
  exit 1
fi

python3 - "$run_json" "$solver_json" "$baseline" "$tolerance" "$build_type" <<'EOF'
import json, sys

run = json.load(open(sys.argv[1]))
solver_run = json.load(open(sys.argv[2]))
base = json.load(open(sys.argv[3]))
tol = float(sys.argv[4])
build_type = sys.argv[5]

# Hard gate, checked first: throughput numbers from differently-configured
# trees are not comparable, so a build-type mismatch fails before any ratio
# is even looked at.
base_build_type = base.get("context", {}).get("build_type")
if base_build_type is None:
    print("bench_check: FAIL\n  - baseline records no context.build_type; "
          "re-record it with tools/bench_check.sh --update")
    sys.exit(1)
if base_build_type != build_type:
    print("bench_check: FAIL\n"
          f"  - build type mismatch: baseline was recorded from a "
          f"{base_build_type or '(unset)'} tree but this run used a "
          f"{build_type or '(unset)'} tree\n"
          "    compare with a matching -DCMAKE_BUILD_TYPE build, or "
          "re-record via tools/bench_check.sh --update")
    sys.exit(1)
print(f"build type: {build_type or '(unset)'} (matches baseline)")

current = {b["name"]: b["items_per_second"]
           for b in run["benchmarks"] if "items_per_second" in b}

failures = []
# An empty side means the gate cannot gate anything — that is a failure
# (a crashed bench run or a gutted baseline must not read as "all clear").
if not base.get("benchmarks"):
    failures.append(f"baseline {sys.argv[2]} contains no benchmarks")
if not current:
    failures.append("benchmark run produced no items_per_second entries")
print(f"{'benchmark':44} {'baseline':>14} {'current':>14} {'ratio':>7}")
for name, expected in base["benchmarks"].items():
    got = current.get(name)
    if got is None:
        failures.append(f"{name}: missing from this run")
        continue
    ratio = got / expected
    gated = not name.startswith("BM_ParallelSweep")
    note = "" if gated else "  (informational — host-core dependent)"
    print(f"{name:44} {expected:14.3e} {got:14.3e} {ratio:6.2f}x{note}")
    if gated and ratio < 1.0 - tol:
        failures.append(
            f"{name}: {got:.3e} items/s is {100 * (1 - ratio):.1f}% below "
            f"baseline {expected:.3e} (tolerance {100 * tol:.0f}%)")

# Compiled-stream invariant: the line-granular path must keep its >= 2x
# advantage over the word-granular reference on the same inputs.
fast = current.get("BM_ConflictGraphBuild")
ref = current.get("BM_ConflictGraphBuildWordRef")
if fast and ref:
    speedup = fast / ref
    print(f"\ncompiled-stream speedup (conflict build): {speedup:.2f}x")
    if speedup < 2.0:
        failures.append(
            f"compiled-stream speedup {speedup:.2f}x < 2.0x required")
elif current:
    # The invariant's inputs disappearing is itself a regression signal.
    for name in ("BM_ConflictGraphBuild", "BM_ConflictGraphBuildWordRef"):
        if not current.get(name):
            failures.append(
                f"{name}: required by the compiled-stream speedup "
                "invariant but absent from this run")

# Null-tracer invariant: with no registry and no tracer attached, an
# obs::Span must cost one relaxed atomic load — the instrumented hot paths
# may not slow down when tracing is off. Both variants run the same mix
# kernel, so their ratio isolates the Span construction cost; >= 0.85
# allows measurement noise and nothing more.
fast = current.get("BM_TraceOverheadNull")
ref = current.get("BM_TraceOverheadOff")
if fast and ref:
    ratio = fast / ref
    print(f"null-tracer overhead (Null/Off): {ratio:.2f}x")
    if ratio < 0.85:
        failures.append(
            f"null-tracer span path {ratio:.2f}x of the bare kernel "
            "(>= 0.85x required — tracing-off must stay within noise)")
elif current:
    for name in ("BM_TraceOverheadNull", "BM_TraceOverheadOff"):
        if not current.get(name):
            failures.append(
                f"{name}: required by the null-tracer overhead invariant "
                "but absent from this run")

# Disarmed-injection invariant: a fault::at site with no spec armed must
# cost one relaxed atomic load, exactly like the detached span. Both
# variants run the same mix kernel; >= 0.85 allows measurement noise and
# nothing more (measured ~1.0x on the recording host).
fast = current.get("BM_FaultCheckOff")
ref = current.get("BM_TraceOverheadOff")
if fast and ref:
    ratio = fast / ref
    print(f"disarmed fault-site overhead (FaultCheckOff/Off): {ratio:.2f}x")
    if ratio < 0.85:
        failures.append(
            f"disarmed fault-site path {ratio:.2f}x of the bare kernel "
            "(>= 0.85x required — injection-off must stay within noise)")
elif current:
    for name in ("BM_FaultCheckOff", "BM_TraceOverheadOff"):
        if not current.get(name):
            failures.append(
                f"{name}: required by the disarmed fault-site overhead "
                "invariant but absent from this run")

# One-pass sweep invariant: replaying a fetch stream once through the
# stack-distance engine must stay >= 3x faster than simulating the same
# 16-config family one Cache at a time.
fast = current.get("BM_StackSweep")
ref = current.get("BM_StackSweepPerConfigRef")
if fast and ref:
    speedup = fast / ref
    print(f"one-pass sweep speedup (16-config family): {speedup:.2f}x")
    if speedup < 3.0:
        failures.append(
            f"one-pass sweep speedup {speedup:.2f}x < 3.0x required")
elif current:
    for name in ("BM_StackSweep", "BM_StackSweepPerConfigRef"):
        if not current.get(name):
            failures.append(
                f"{name}: required by the one-pass sweep speedup "
                "invariant but absent from this run")

# Serve-cache invariant: a content-addressed hit (key + LRU lookup +
# stored-bytes copy) must stay >= 10x faster than recomputing the same job
# through the pipeline — the ratio the evaluation service exists to
# deliver. Measured ~3000x on the recording host; 10x leaves room for any
# realistic host while still catching a cache that silently recomputes.
fast = current.get("BM_ServeCacheHit")
ref = current.get("BM_ServeCacheMiss")
if fast and ref:
    speedup = fast / ref
    print(f"serve-cache speedup (hit vs recompute): {speedup:.1f}x")
    if speedup < 10.0:
        failures.append(
            f"serve-cache hit speedup {speedup:.1f}x < 10.0x required")
elif current:
    for name in ("BM_ServeCacheHit", "BM_ServeCacheMiss"):
        if not current.get(name):
            failures.append(
                f"{name}: required by the serve-cache speedup invariant "
                "but absent from this run")

# Solver gate: wall-clock within tolerance, explored nodes never above the
# recorded baseline (the search is deterministic — more nodes means the
# search strategy regressed, not the host).
solver_current = {b["name"]: b for b in solver_run.get("benchmarks", [])
                  if "nodes" in b}
solver_base = base.get("solver", {})
if not solver_base:
    failures.append(f"baseline {sys.argv[3]} contains no solver entries "
                    "(record with tools/bench_check.sh --update)")
if not solver_current:
    failures.append("solver benchmark run produced no node-counted entries")
print()
for name, expected in solver_base.items():
    got = solver_current.get(name)
    if got is None:
        failures.append(f"{name}: missing from the solver run")
        continue
    t_ratio = got["real_time"] / expected["real_time_ns"]
    print(f"{name:44} time {expected['real_time_ns']:12.3e} -> "
          f"{got['real_time']:12.3e} ns ({t_ratio:.2f}x)   "
          f"nodes {expected['nodes']} -> {int(got['nodes'])}")
    if t_ratio > 1.0 + tol:
        failures.append(
            f"{name}: {got['real_time']:.3e} ns is "
            f"{100 * (t_ratio - 1):.1f}% above baseline "
            f"{expected['real_time_ns']:.3e} (tolerance {100 * tol:.0f}%)")
    if int(got["nodes"]) > expected["nodes"]:
        failures.append(
            f"{name}: explored {int(got['nodes'])} nodes, baseline is "
            f"{expected['nodes']} — search-effort regression")

if failures:
    print("\nbench_check: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("\nbench_check: OK")
EOF

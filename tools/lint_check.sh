#!/usr/bin/env bash
# Source-tree lint gate.
#
# Runs casa_lint over the repo, asserts the tree is clean (zero
# error-severity diagnostics), and validates the emitted "casa-lint v1"
# artifact key-by-key: schema string, counter types, counters agreeing
# with the diagnostics array, and every diagnostic's rule id being one of
# the documented lint rules. The artifact is the contract tests and CI
# assert on, so it is checked as strictly as the tree itself.
#
# Registered as a ctest (lint_check); exits 77 (ctest SKIP) on hosts
# without python3, hard-fails on a missing casa_lint binary.
#
# Usage:
#   tools/lint_check.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

lint="$build_dir/tools/casa_lint"
if [[ ! -x "$lint" ]]; then
  echo "lint_check: FAIL — casa_lint binary missing: $lint" >&2
  echo "  build it first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "lint_check: SKIP — python3 not found on this host" >&2
  exit 77
fi

artifact="$(mktemp /tmp/lint_check.XXXXXX.json)"
trap 'rm -f "$artifact"' EXIT

echo "lint_check: running casa_lint over $repo_root"
status=0
"$lint" --root "$repo_root" --json "$artifact" || status=$?
if [[ "$status" -ge 2 ]]; then
  echo "lint_check: FAIL — casa_lint died with status $status" >&2
  exit 1
fi

python3 - "$artifact" "$status" <<'EOF'
import json, sys

failures = []


def fail(key, why):
    failures.append(f"{key}: {why}")


try:
    doc = json.load(open(sys.argv[1]))
except (OSError, json.JSONDecodeError) as e:
    print(f"lint_check: FAIL\n  - artifact unreadable: {e}")
    sys.exit(1)

exit_status = int(sys.argv[2])

if doc.get("schema") != "casa-lint v1":
    fail("schema", f"expected 'casa-lint v1', got {doc.get('schema')!r}")
if not isinstance(doc.get("tool"), str) or not doc.get("tool"):
    fail("tool", f"must be a non-empty string, got {doc.get('tool')!r}")
for key in ("files_scanned", "rules_evaluated", "errors", "warnings"):
    v = doc.get(key)
    if not isinstance(v, int) or v < 0:
        fail(key, f"must be a non-negative integer, got {v!r}")

diags = doc.get("diagnostics")
if not isinstance(diags, list):
    fail("diagnostics", f"must be an array, got {type(diags).__name__}")
    diags = []

errors = [d for d in diags if d.get("severity") == "error"]
warnings = [d for d in diags if d.get("severity") == "warning"]
if doc.get("errors") != len(errors):
    fail("errors", f"counter says {doc.get('errors')} but the array holds "
         f"{len(errors)}")
if doc.get("warnings") != len(warnings):
    fail("warnings", f"counter says {doc.get('warnings')} but the array "
         f"holds {len(warnings)}")
if len(errors) + len(warnings) != len(diags):
    fail("diagnostics", "severity must be 'error' or 'warning' on every "
         "entry")

# Rule ids are stable API: docs/lint.md catalogues each family's prefix.
prefixes = ("lex.", "pp.", "include.", "names.", "hygiene.", "hotpath.",
            "api.")
for d in diags:
    rule = d.get("rule", "")
    if not isinstance(rule, str) or not rule.startswith(prefixes):
        fail("diagnostics.rule", f"unknown rule id {rule!r}")
    for key in ("file", "message"):
        if not isinstance(d.get(key), str) or not d.get(key):
            fail(f"diagnostics.{key}", f"missing on {rule!r}")
    for key in ("line", "col"):
        if not isinstance(d.get(key), int):
            fail(f"diagnostics.{key}", f"missing on {rule!r}")

if doc.get("files_scanned", 0) < 100:
    fail("files_scanned", f"only {doc.get('files_scanned')} files scanned — "
         "the tree walk is broken")
if doc.get("rules_evaluated", 0) < 14:
    fail("rules_evaluated", f"{doc.get('rules_evaluated')} rule families "
         "evaluated, expected >= 14")

# The gate itself: a clean tree.
if errors:
    fail("tree", f"{len(errors)} lint error(s); run casa_lint --fix-list -")
    for d in errors[:20]:
        fail("  " + d.get("rule", "?"),
             f"{d.get('file')}:{d.get('line')}: {d.get('message')}")
if exit_status != (1 if errors else 0):
    fail("exit", f"casa_lint exited {exit_status} but the artifact holds "
         f"{len(errors)} errors")

if failures:
    print("lint_check: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"lint_check: OK ({doc['files_scanned']} files, "
      f"{doc['rules_evaluated']} rule families, "
      f"{len(warnings)} warning(s))")
EOF

// casa_cli — run any allocation experiment from the command line.
//
//   casa_cli --workload=mpeg --technique=casa --spm=512
//   casa_cli --workload=g721 --cache=1024 --assoc=2 --policy=fifo
//            --technique=steinke --spm=256 --csv
//   casa_cli --workload=adpcm --technique=loopcache --spm=256 --lc-regions=4
//   casa_cli --workload=mpeg --technique=casa --spm=512 --dot=conflicts.dot
//   casa_cli --workload=g721 --spm=512 --check
//
// Techniques: none (cache only), casa, greedy (CASA objective, heuristic
// solver), steinke, loopcache. Prints a human-readable report or, with
// --csv, a single comma-separated row (with a header comment) suitable for
// scripting sweeps. --check skips the experiment and instead runs the
// casa::check semantic analyzer over every inter-stage artifact the
// configuration produces (trace program, layout, conflict graph, both ILP
// linearizations, allocation, energy tables), printing each diagnostic and
// exiting non-zero on errors.
#include <fstream>
#include <iostream>
#include <optional>

#include "casa/check/rules.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/io/serialize.hpp"
#include "casa/obs/export.hpp"
#include "casa/obs/metric_names.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/obs/span.hpp"
#include "casa/obs/trace_analysis.hpp"
#include "casa/obs/trace_names.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/args.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

namespace {

cachesim::ReplacementPolicy policy_from(const std::string& name) {
  if (name == "lru") return cachesim::ReplacementPolicy::kLru;
  if (name == "fifo") return cachesim::ReplacementPolicy::kFifo;
  if (name == "rr") return cachesim::ReplacementPolicy::kRoundRobin;
  if (name == "random") return cachesim::ReplacementPolicy::kRandom;
  throw PreconditionError("unknown --policy: " + name +
                          " (lru|fifo|rr|random)");
}

/// Standalone analyzer (--check): rebuild every inter-stage artifact for
/// the configuration and run the full rule catalogue over it. Returns the
/// process exit code (0 clean, 1 when any error-severity diagnostic fired).
int run_check(const prog::Program& program, const report::Workbench& bench,
              const cachesim::CacheConfig& cache, Bytes spm, double fuse,
              obs::MetricsRegistry* reg, const std::string& check_json) {
  check::CheckRunner runner(reg);

  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  topt.max_trace_size = std::max<Bytes>(spm, cache.line_size);
  topt.fuse_ratio = fuse;
  const traceopt::TraceProgram tp =
      traceopt::form_traces(program, bench.execution().profile, topt);
  check::check_trace_program(tp, cache.line_size, runner);

  const traceopt::Layout layout = traceopt::layout_all(tp);
  check::check_layout(tp, layout, cache.line_size, runner);

  conflict::BuildOptions bopt;
  bopt.cache = cache;
  const conflict::ConflictGraph graph =
      conflict::build_conflict_graph(tp, layout, bench.execution().walk, bopt);
  check::check_conflict_graph(tp, layout, graph, cache, runner);

  const energy::EnergyTable energies =
      energy::EnergyTable::build(cache, spm, 0, 0);
  check::check_energy_table(energies, spm > 0, false, runner);
  check::check_energy_scaling(energy::arm7_tech(), runner);

  const core::CasaProblem problem =
      core::CasaProblem::from(tp, graph, energies, spm);
  const core::SavingsProblem sp = core::presolve(problem);
  for (const auto lin :
       {core::Linearization::kPaper, core::Linearization::kTight}) {
    const core::CasaModel cm = core::build_casa_model(sp, lin);
    check::check_casa_model(cm, sp, lin, runner);
  }

  const core::CasaAllocator allocator;
  const core::AllocationResult alloc = allocator.allocate(problem);
  check::check_allocation(problem, alloc, runner);

  for (const check::Diagnostic& d : runner.diagnostics()) {
    std::cout << d.to_string() << "\n";
  }
  std::cout << runner.summary() << " — " << tp.object_count() << " objects, "
            << graph.edge_count() << " conflict edges, "
            << sp.item_count() << " items / " << sp.edges.size()
            << " presolved edges\n";

  if (!check_json.empty()) {
    const auto render = [&runner](std::ostream& os) {
      check::write_check_json(os, runner, "casa_cli");
    };
    unsigned attempts = 1;
    if (check_json == "-") {
      attempts = obs::write_artifact_guarded(
          std::cout, fault::site_names::kIoCheckWrite, render);
    } else {
      std::ofstream out(check_json);
      CASA_CHECK(out.good(), "cannot open check output file: " + check_json);
      attempts = obs::write_artifact_guarded(
          out, fault::site_names::kIoCheckWrite, render);
      std::cerr << "check artifact written to " << check_json << "\n";
    }
    if (attempts > 1 && reg != nullptr) {
      reg->add(obs::metric_names::kIoArtifactRetries, attempts - 1);
    }
  }
  return runner.ok() ? 0 : 1;
}

int run(ArgParser& args) {
  const std::string workload =
      args.get("workload", "adpcm", "adpcm|g721|mpeg|epic|pegwit|gsm|jpeg");
  const std::string technique =
      args.get("technique", "casa", "none|casa|greedy|steinke|loopcache");
  const std::uint64_t cache_size =
      args.get_u64("cache", 0, "I-cache bytes (0 = paper default)");
  const std::uint64_t assoc = args.get_u64("assoc", 1, "associativity");
  const std::string policy =
      args.get("policy", "lru", "replacement: lru|fifo|rr|random");
  const std::uint64_t spm =
      args.get_u64("spm", 256, "scratchpad / loop-cache bytes");
  const std::uint64_t lc_regions =
      args.get_u64("lc-regions", 4, "loop-cache preloadable regions");
  const std::uint64_t seed = args.get_u64("seed", 42, "profiling seed");
  const std::uint64_t ilp_threads = args.get_u64(
      "ilp-threads", 1,
      "branch & bound worker threads (0 = hardware concurrency; results "
      "are thread-count-invariant)");
  const bool no_warm_start = args.get_flag(
      "no-warm-start", "disable the knapsack/root-LP incumbent seed");
  const bool no_ilp_presolve = args.get_flag(
      "no-ilp-presolve", "disable the bound-box presolve before search");
  const double fuse = args.get_double("fuse-ratio", 0.5,
                                      "trace formation fusion threshold");
  const bool csv = args.get_flag("csv", "emit one CSV row");
  const std::string dot =
      args.get("dot", "", "write the conflict graph to this DOT file");
  const std::string save_problem = args.get(
      "save-problem", "",
      "write the allocator input (casa-problem v1) to this file");
  const std::string metrics_json = args.get(
      "metrics-json", "",
      "write a casa-metrics v1 telemetry artifact to this file ('-' means "
      "stdout, the same sink as --metrics-stdout; each distinct sink is "
      "written exactly once)");
  const bool metrics_stdout = args.get_flag(
      "metrics-stdout",
      "print the telemetry artifact to stdout (redundant with "
      "--metrics-json -)");
  const std::string trace_json = args.get(
      "trace-json", "",
      "write a casa-trace v1 Chrome-trace artifact (Perfetto-loadable) to "
      "this file ('-' = stdout)");
  const bool trace_summary = args.get_flag(
      "trace-summary",
      "print per-phase self/total time, per-thread utilization and the "
      "critical path of this run's trace");
  const bool do_check = args.get_flag(
      "check", "run the artifact analyzer instead of the experiment");
  const std::string check_json = args.get(
      "check-json", "",
      "write a casa-check v1 diagnostics artifact to this file ('-' = "
      "stdout; implies --check)");
  const std::string fault_spec = args.get(
      "fault-spec", "",
      "arm deterministic fault injection from this spec (overrides the "
      "CASA_FAULT_SPEC environment variable; see docs/faults.md)");

  if (args.help_requested()) {
    std::cout << "casa_cli options:\n" << args.help();
    return 0;
  }
  try {
    args.reject_unknown();
  } catch (const PreconditionError& e) {
    std::cerr << e.what() << "\nrun with --help for usage\n";
    return 2;
  }

  // Injection arms before any pipeline work so every registered site is
  // live; disarmed runs pay one relaxed load per site. The trace hook turns
  // each fire into a fault.injected instant when tracing is attached.
  if (!fault_spec.empty()) {
    fault::arm(fault::parse_spec(fault_spec));
  } else {
    fault::arm_from_env();
  }
  if (fault::armed()) obs::install_fault_trace_hook();

  const bool want_metrics = metrics_stdout || !metrics_json.empty();
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* reg = want_metrics ? &registry : nullptr;
  if (reg != nullptr) {
    reg->set_config("workload", workload);
    reg->set_config("technique", technique);
    reg->set_config("assoc", std::to_string(assoc));
    reg->set_config("policy", policy);
    reg->set_config("spm", std::to_string(spm));
    reg->set_config("seed", std::to_string(seed));
    reg->set_config("fuse_ratio", std::to_string(fuse));
    if (fault::armed()) {
      reg->set_gauge(obs::metric_names::kFaultArmedSites,
                     static_cast<double>(fault::armed_site_count()));
    }
  }

  // Tracing attaches before the Workbench profiles the workload, so the
  // "profiling" span and everything after it land on the timeline.
  const bool want_trace = trace_summary || !trace_json.empty();
  std::optional<obs::Tracer> tracer;
  if (want_trace) {
    tracer.emplace();
    obs::Tracer::set_current(&*tracer);
  }
  const auto finish_trace = [&] {
    if (!want_trace) return;
    obs::Tracer::set_current(nullptr);
    const obs::TraceData data = tracer->drain();
    if (!trace_json.empty()) {
      const auto render = [&data](std::ostream& os) {
        io::write_trace_json(os, data, "casa_cli");
      };
      if (trace_json == "-") {
        obs::write_artifact_guarded(std::cout,
                                    fault::site_names::kIoTraceWrite, render);
      } else {
        std::ofstream out(trace_json);
        CASA_CHECK(out.good(),
                   "cannot open trace output file: " + trace_json);
        obs::write_artifact_guarded(out, fault::site_names::kIoTraceWrite,
                                    render);
        std::cerr << "trace artifact written to " << trace_json << "\n";
      }
    }
    if (trace_summary) {
      obs::write_trace_summary(std::cout, obs::analyze_trace(data));
    }
  };

  const prog::Program program = workloads::by_name(workload);
  report::WorkbenchOptions wopt;
  wopt.exec_seed = seed;
  wopt.fuse_ratio = fuse;
  wopt.metrics = reg;
  // The constructor profiles the workload — that is pipeline work too, so
  // it gets a span alongside the run_* flow phases.
  std::optional<report::Workbench> bench_storage;
  {
    const obs::Span s(reg, obs::trace_names::kProfiling);
    bench_storage.emplace(program, wopt);
  }
  const report::Workbench& bench = *bench_storage;

  cachesim::CacheConfig cache = workloads::paper_cache_for(workload);
  if (cache_size != 0) cache.size = cache_size;
  cache.associativity = static_cast<unsigned>(assoc);
  cache.policy = policy_from(policy);
  cache.validate();
  if (reg != nullptr) reg->set_config("cache", std::to_string(cache.size));

  if (do_check || !check_json.empty()) {
    const int rc = run_check(program, bench, cache, spm, fuse, reg,
                             check_json);
    finish_trace();
    return rc;
  }

  core::CasaOptions copt;
  copt.ilp_threads = static_cast<unsigned>(ilp_threads);
  copt.ilp_warm_start = !no_warm_start;
  copt.ilp_presolve = !no_ilp_presolve;

  using Job = report::Workbench::Job;
  Job job;
  if (technique == "none") {
    job = Job::cache_only_job(cache);
  } else if (technique == "casa") {
    job = Job::casa_job(cache, spm, copt);
  } else if (technique == "greedy") {
    copt.engine = core::CasaEngine::kGreedy;
    job = Job::casa_job(cache, spm, copt);
  } else if (technique == "steinke") {
    job = Job::steinke_job(cache, spm);
  } else if (technique == "loopcache") {
    job = Job::loopcache_job(cache, spm, static_cast<unsigned>(lc_regions));
  } else {
    throw PreconditionError("unknown --technique: " + technique);
  }
  const report::Outcome outcome = bench.evaluate(job).value();

  if (!save_problem.empty()) {
    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = std::max<Bytes>(spm, cache.line_size);
    topt.fuse_ratio = fuse;
    const auto tp =
        traceopt::form_traces(program, bench.execution().profile, topt);
    const auto layout = traceopt::layout_all(tp);
    conflict::BuildOptions bopt;
    bopt.cache = cache;
    const auto graph = conflict::build_conflict_graph(
        tp, layout, bench.execution().walk, bopt);
    const auto energies = energy::EnergyTable::build(cache, spm, 0, 0);
    const auto problem = core::CasaProblem::from(tp, graph, energies, spm);
    std::ofstream out(save_problem);
    CASA_CHECK(out.good(), "cannot open output file: " + save_problem);
    io::write_problem(out, problem);
    std::cerr << "allocator input written to " << save_problem << "\n";
  }

  if (!dot.empty()) {
    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = std::max<Bytes>(spm, cache.line_size);
    topt.fuse_ratio = fuse;
    const auto tp =
        traceopt::form_traces(program, bench.execution().profile, topt);
    const auto layout = traceopt::layout_all(tp);
    conflict::BuildOptions bopt;
    bopt.cache = cache;
    const auto graph = conflict::build_conflict_graph(
        tp, layout, bench.execution().walk, bopt);
    std::ofstream out(dot);
    CASA_CHECK(out.good(), "cannot open DOT output file: " + dot);
    out << graph.to_dot();
    std::cerr << "conflict graph (" << graph.node_count() << " nodes, "
              << graph.edge_count() << " edges) written to " << dot << "\n";
  }

  if (want_metrics) {
    obs::ArtifactOptions aopt;
    aopt.tool = "casa_cli";
    const obs::ArtifactSinkPlan plan =
        obs::plan_artifact_sinks(metrics_json, metrics_stdout);
    if (!plan.note.empty()) {
      std::cerr << "casa_cli: note: " << plan.note << "\n";
    }
    // The guard re-renders per attempt, and each render snapshots fresh
    // after folding in the injector totals and any failed attempts of this
    // very write — a retried metrics artifact reports its own retries.
    unsigned renders = 0;
    std::uint64_t synced_fires = 0;
    const auto render = [&](std::ostream& os) {
      if (renders++ > 0) {
        registry.add(obs::metric_names::kIoArtifactRetries, 1);
      }
      const std::uint64_t fired = fault::stats().fires;
      if (fired > synced_fires) {
        registry.add(obs::metric_names::kFaultInjected, fired - synced_fires);
        synced_fires = fired;
      }
      io::write_metrics_json(os, registry.snapshot(), aopt);
    };
    if (!plan.file.empty()) {
      std::ofstream out(plan.file);
      CASA_CHECK(out.good(), "cannot open metrics output file: " + plan.file);
      obs::write_artifact_guarded(out, fault::site_names::kIoMetricsWrite,
                                  render);
      std::cerr << "metrics artifact written to " << plan.file << "\n";
    }
    if (plan.to_stdout) {
      obs::write_artifact_guarded(std::cout,
                                  fault::site_names::kIoMetricsWrite, render);
    }
  }

  finish_trace();

  const auto& c = outcome.sim.counters;
  if (csv) {
    std::cout << "# workload,technique,cache,assoc,policy,spm,energy_uJ,"
                 "fetches,spm_acc,lc_acc,hits,misses,cycles\n"
              << workload << ',' << technique << ',' << cache.size << ','
              << cache.associativity << ',' << policy << ',' << spm << ','
              << to_micro_joules(outcome.sim.total_energy) << ','
              << c.total_fetches << ',' << c.spm_accesses << ','
              << c.lc_accesses << ',' << c.cache_hits << ','
              << c.cache_misses << ',' << c.cycles << '\n';
    return 0;
  }

  std::cout << workload << " / " << technique << " — cache " << cache.size
            << "B " << cache.associativity << "-way "
            << cachesim::to_string(cache.policy) << ", spm/lc " << spm
            << "B\n"
            << "  energy        " << to_micro_joules(outcome.sim.total_energy)
            << " uJ\n"
            << "  fetches       " << c.total_fetches << " (spm "
            << c.spm_accesses << ", lc " << c.lc_accesses << ", cache "
            << c.cache_accesses << ")\n"
            << "  cache misses  " << c.cache_misses << "\n"
            << "  cycles        " << c.cycles << "\n";
  if (technique == "casa" || technique == "greedy") {
    const core::AllocationResult& alloc = outcome.alloc();
    const auto& st = alloc.solver_stats;
    std::cout << "  allocation    " << alloc.used_bytes << "/" << spm
              << " B via " << core::to_string(alloc.engine_used)
              << " (" << (alloc.exact ? "optimal" : "heuristic")
              << ", " << alloc.solver_nodes << " nodes, "
              << st.bound_prunes + st.infeasible_prunes << " prunes, "
              << alloc.solve_seconds * 1e3 << " ms)\n";
    if (alloc.engine_used == core::CasaEngine::kGenericIlp) {
      std::cout << "  ilp search    presolve fixed " << st.presolve_fixed
                << ", warm start "
                << (st.warm_start_used ? "seeded" : "unused")
                << " (root gap " << st.root_gap << ", rc-fixed "
                << st.rc_fixed << "), " << st.subtrees << " subtrees, "
                << st.lp_limit_retries << " LP retries\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

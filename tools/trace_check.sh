#!/usr/bin/env bash
# Trace artifact schema + analyzer consistency gate.
#
# Run A drives casa_cli single-threaded (adpcm / CASA) with --trace-json
# and --trace-summary and validates the emitted "casa-trace v1" artifact:
#   * every top-level key is present, the schema string matches, and run
#     provenance fields are non-empty strings;
#   * every event tid has a thread_name metadata record, begin/end events
#     balance per thread, and flow tails/heads pair up by id;
#   * the analyzer's "critical path: N ns" line equals the run_casa span's
#     begin->end duration computed from the artifact — on a single-threaded
#     run the critical path IS the flow span's wall time, exactly.
# Run B repeats with --ilp-threads=2 and asserts the parallel solver left
# named worker tracks (ilp-0, ilp-1, ...) and flow-linked ilp.subtree spans.
#
# Registered as a ctest (trace_check); exits 77 (ctest SKIP) on hosts
# without python3, hard-fails on a missing casa_cli binary.
#
# Usage:
#   tools/trace_check.sh [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname -- "$0")/.." && pwd)"
build_dir="$repo_root/build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="${2:?--build-dir needs a value}"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cli="$build_dir/tools/casa_cli"
if [[ ! -x "$cli" ]]; then
  echo "trace_check: FAIL — casa_cli binary missing: $cli" >&2
  echo "  build it first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "trace_check: SKIP — python3 not found on this host" >&2
  exit 77
fi

trace_a="$(mktemp /tmp/trace_check_a.XXXXXX.json)"
trace_b="$(mktemp /tmp/trace_check_b.XXXXXX.json)"
summary_a="$(mktemp /tmp/trace_check_a.XXXXXX.txt)"
trap 'rm -f "$trace_a" "$trace_b" "$summary_a"' EXIT

echo "trace_check: run A — single-threaded --trace-json + --trace-summary"
"$cli" --workload=adpcm --technique=casa --spm=256 --ilp-threads=1 \
       --trace-json "$trace_a" --trace-summary > "$summary_a"

echo "trace_check: run B — --ilp-threads=2 for named worker tracks"
"$cli" --workload=adpcm --technique=casa --spm=256 --ilp-threads=2 \
       --trace-json "$trace_b" > /dev/null

python3 - "$trace_a" "$summary_a" "$trace_b" <<'EOF'
import json, re, sys

failures = []


def fail(key, why):
    failures.append(f"{key}: {why}")


def load(path, label):
    try:
        return json.load(open(path))
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_check: FAIL\n  - {label} artifact {path} unreadable: {e}")
        sys.exit(1)


def ts_ns(event):
    # write_trace_json emits ts as microseconds with exactly three decimals,
    # so nanosecond arithmetic on the parsed floats is lossless.
    return round(event["ts"] * 1000)


def validate(doc, label):
    """Schema + structural checks shared by both runs. Returns the events."""
    for key in ("schema", "run", "displayTimeUnit", "dropped", "traceEvents"):
        if key not in doc:
            fail(f"{label}.{key}", "missing from artifact")
    if doc.get("schema") != "casa-trace v1":
        fail(f"{label}.schema",
             f"expected 'casa-trace v1', got {doc.get('schema')!r}")
    for key in ("tool", "git", "build_type", "compiler"):
        v = doc.get("run", {}).get(key)
        if not isinstance(v, str) or not v:
            fail(f"{label}.run.{key}", f"must be a non-empty string, got {v!r}")
    if doc.get("dropped") != 0:
        fail(f"{label}.dropped",
             f"expected a complete trace, got {doc.get('dropped')!r} drops")

    events = doc.get("traceEvents", [])
    if not events:
        fail(f"{label}.traceEvents", "empty")
    named_tids = set()
    depth = {}
    flows = {}
    for e in events:
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{label}.traceEvents", f"event missing {key!r}: {e!r}")
                return events
        if e["ph"] == "M":
            if e["name"] == "thread_name":
                named_tids.add(e["tid"])
            continue
        if "ts" not in e:
            fail(f"{label}.traceEvents", f"event missing 'ts': {e!r}")
            return events
        if e["ph"] == "B":
            depth[e["tid"]] = depth.get(e["tid"], 0) + 1
        elif e["ph"] == "E":
            depth[e["tid"]] = depth.get(e["tid"], 0) - 1
            if depth[e["tid"]] < 0:
                fail(f"{label}.tid{e['tid']}", "end before matching begin")
        elif e["ph"] in ("s", "f"):
            flows.setdefault(e["id"], []).append(e["ph"])
    for tid, d in depth.items():
        if d != 0:
            fail(f"{label}.tid{tid}", f"{d} unbalanced begin/end events")
    for fid, sides in flows.items():
        if sorted(sides) != ["f", "s"]:
            fail(f"{label}.flow{fid}",
                 f"expected one tail + one head, got {sides}")
    used = {e["tid"] for e in events if e["ph"] != "M"}
    for tid in sorted(used - named_tids):
        fail(f"{label}.tid{tid}", "no thread_name metadata for this track")
    return events


# --- Run A: schema plus analyzer consistency -------------------------------
doc_a = load(sys.argv[1], "run A")
events_a = validate(doc_a, "runA")

begin = end = None
for e in events_a:
    if e.get("name") == "run_casa" and e.get("ph") == "B" and begin is None:
        begin = ts_ns(e)
    if e.get("name") == "run_casa" and e.get("ph") == "E":
        end = ts_ns(e)
if begin is None or end is None:
    fail("runA.run_casa", "begin/end pair missing from the artifact")
else:
    wall = end - begin
    summary = open(sys.argv[2]).read()
    m = re.search(r"critical path: (\d+) ns", summary)
    if not m:
        fail("runA.summary", "no 'critical path: N ns' line in --trace-summary")
    elif int(m.group(1)) != wall:
        fail("runA.critical_path",
             f"summary says {m.group(1)} ns but the run_casa span is "
             f"{wall} ns — single-threaded critical path must equal the "
             "flow span's wall time exactly")

# --- Run B: parallel solver leaves named tracks + flow-linked subtrees -----
doc_b = load(sys.argv[3], "run B")
events_b = validate(doc_b, "runB")

worker_names = [e["args"]["name"] for e in events_b
                if e["ph"] == "M" and e["name"] == "thread_name"
                and re.fullmatch(r"ilp-\d+", e["args"].get("name", ""))]
if len(worker_names) < 2:
    fail("runB.tracks",
         f"expected >= 2 named ilp worker tracks, got {worker_names}")
subtrees = [e for e in events_b
            if e.get("name") == "ilp.subtree" and e.get("ph") == "B"]
heads = [e for e in events_b
         if e.get("name") == "ilp.subtree" and e.get("ph") == "f"]
if not subtrees:
    fail("runB.ilp.subtree", "no subtree spans in the parallel run")
if len(heads) != len(subtrees):
    fail("runB.ilp.subtree",
         f"{len(subtrees)} subtree spans but {len(heads)} flow heads — "
         "every subtree must be flow-linked to its scheduling span")

if failures:
    print("trace_check: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)

print(f"trace_check: OK (run A: {len(events_a)} events, "
      f"run B: {len(events_b)} events, "
      f"{len(subtrees)} flow-linked subtrees on "
      f"{len(worker_names)} ilp workers)")
EOF

file(REMOVE_RECURSE
  "CMakeFiles/inspect_workloads.dir/inspect_workloads.cpp.o"
  "CMakeFiles/inspect_workloads.dir/inspect_workloads.cpp.o.d"
  "inspect_workloads"
  "inspect_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

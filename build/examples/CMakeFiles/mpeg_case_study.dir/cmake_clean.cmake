file(REMOVE_RECURSE
  "CMakeFiles/mpeg_case_study.dir/mpeg_case_study.cpp.o"
  "CMakeFiles/mpeg_case_study.dir/mpeg_case_study.cpp.o.d"
  "mpeg_case_study"
  "mpeg_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mpeg_case_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for wcet_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wcet_analysis.dir/wcet_analysis.cpp.o"
  "CMakeFiles/wcet_analysis.dir/wcet_analysis.cpp.o.d"
  "wcet_analysis"
  "wcet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for overlay_phases.
# This may be replaced when dependencies are built.

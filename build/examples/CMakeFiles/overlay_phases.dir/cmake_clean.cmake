file(REMOVE_RECURSE
  "CMakeFiles/overlay_phases.dir/overlay_phases.cpp.o"
  "CMakeFiles/overlay_phases.dir/overlay_phases.cpp.o.d"
  "overlay_phases"
  "overlay_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

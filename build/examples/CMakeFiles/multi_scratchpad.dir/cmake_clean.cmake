file(REMOVE_RECURSE
  "CMakeFiles/multi_scratchpad.dir/multi_scratchpad.cpp.o"
  "CMakeFiles/multi_scratchpad.dir/multi_scratchpad.cpp.o.d"
  "multi_scratchpad"
  "multi_scratchpad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_scratchpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for multi_scratchpad.
# This may be replaced when dependencies are built.

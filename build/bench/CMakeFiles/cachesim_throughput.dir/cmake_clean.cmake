file(REMOVE_RECURSE
  "CMakeFiles/cachesim_throughput.dir/cachesim_throughput.cpp.o"
  "CMakeFiles/cachesim_throughput.dir/cachesim_throughput.cpp.o.d"
  "cachesim_throughput"
  "cachesim_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

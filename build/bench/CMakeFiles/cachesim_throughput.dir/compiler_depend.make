# Empty compiler generated dependencies file for cachesim_throughput.
# This may be replaced when dependencies are built.

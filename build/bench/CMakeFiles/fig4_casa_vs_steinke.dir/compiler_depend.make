# Empty compiler generated dependencies file for fig4_casa_vs_steinke.
# This may be replaced when dependencies are built.

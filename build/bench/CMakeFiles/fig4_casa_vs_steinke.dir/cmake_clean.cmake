file(REMOVE_RECURSE
  "CMakeFiles/fig4_casa_vs_steinke.dir/fig4_casa_vs_steinke.cpp.o"
  "CMakeFiles/fig4_casa_vs_steinke.dir/fig4_casa_vs_steinke.cpp.o.d"
  "fig4_casa_vs_steinke"
  "fig4_casa_vs_steinke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_casa_vs_steinke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_move_vs_copy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_move_vs_copy.dir/ablation_move_vs_copy.cpp.o"
  "CMakeFiles/ablation_move_vs_copy.dir/ablation_move_vs_copy.cpp.o.d"
  "ablation_move_vs_copy"
  "ablation_move_vs_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_move_vs_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

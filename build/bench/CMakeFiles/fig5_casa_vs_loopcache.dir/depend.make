# Empty dependencies file for fig5_casa_vs_loopcache.
# This may be replaced when dependencies are built.

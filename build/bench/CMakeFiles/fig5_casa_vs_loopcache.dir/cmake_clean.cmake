file(REMOVE_RECURSE
  "CMakeFiles/fig5_casa_vs_loopcache.dir/fig5_casa_vs_loopcache.cpp.o"
  "CMakeFiles/fig5_casa_vs_loopcache.dir/fig5_casa_vs_loopcache.cpp.o.d"
  "fig5_casa_vs_loopcache"
  "fig5_casa_vs_loopcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_casa_vs_loopcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

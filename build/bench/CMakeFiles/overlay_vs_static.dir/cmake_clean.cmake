file(REMOVE_RECURSE
  "CMakeFiles/overlay_vs_static.dir/overlay_vs_static.cpp.o"
  "CMakeFiles/overlay_vs_static.dir/overlay_vs_static.cpp.o.d"
  "overlay_vs_static"
  "overlay_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

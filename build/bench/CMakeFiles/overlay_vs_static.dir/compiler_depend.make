# Empty compiler generated dependencies file for overlay_vs_static.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/unified_code_data.dir/unified_code_data.cpp.o"
  "CMakeFiles/unified_code_data.dir/unified_code_data.cpp.o.d"
  "unified_code_data"
  "unified_code_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unified_code_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

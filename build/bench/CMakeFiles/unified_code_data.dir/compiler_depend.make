# Empty compiler generated dependencies file for unified_code_data.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ilp_runtime.dir/ilp_runtime.cpp.o"
  "CMakeFiles/ilp_runtime.dir/ilp_runtime.cpp.o.d"
  "ilp_runtime"
  "ilp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

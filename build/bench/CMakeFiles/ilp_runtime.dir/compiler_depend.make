# Empty compiler generated dependencies file for ilp_runtime.
# This may be replaced when dependencies are built.

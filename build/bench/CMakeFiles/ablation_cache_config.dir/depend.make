# Empty dependencies file for ablation_cache_config.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_config.dir/ablation_cache_config.cpp.o"
  "CMakeFiles/ablation_cache_config.dir/ablation_cache_config.cpp.o.d"
  "ablation_cache_config"
  "ablation_cache_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_placement.cpp" "bench/CMakeFiles/ablation_placement.dir/ablation_placement.cpp.o" "gcc" "bench/CMakeFiles/ablation_placement.dir/ablation_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/casa/report/CMakeFiles/casa_report.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/placement/CMakeFiles/casa_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/core/CMakeFiles/casa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/baseline/CMakeFiles/casa_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/ilp/CMakeFiles/casa_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/memsim/CMakeFiles/casa_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/loopcache/CMakeFiles/casa_loopcache.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/energy/CMakeFiles/casa_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/workloads/CMakeFiles/casa_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/conflict/CMakeFiles/casa_conflict.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/traceopt/CMakeFiles/casa_traceopt.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/trace/CMakeFiles/casa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/prog/CMakeFiles/casa_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/cachesim/CMakeFiles/casa_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/support/CMakeFiles/casa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for wcet_bound.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wcet_bound.dir/wcet_bound.cpp.o"
  "CMakeFiles/wcet_bound.dir/wcet_bound.cpp.o.d"
  "wcet_bound"
  "wcet_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

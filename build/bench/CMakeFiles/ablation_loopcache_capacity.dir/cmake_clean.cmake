file(REMOVE_RECURSE
  "CMakeFiles/ablation_loopcache_capacity.dir/ablation_loopcache_capacity.cpp.o"
  "CMakeFiles/ablation_loopcache_capacity.dir/ablation_loopcache_capacity.cpp.o.d"
  "ablation_loopcache_capacity"
  "ablation_loopcache_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loopcache_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

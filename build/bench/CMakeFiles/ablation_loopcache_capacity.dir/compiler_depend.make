# Empty compiler generated dependencies file for ablation_loopcache_capacity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/l2_hierarchy.dir/l2_hierarchy.cpp.o"
  "CMakeFiles/l2_hierarchy.dir/l2_hierarchy.cpp.o.d"
  "l2_hierarchy"
  "l2_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

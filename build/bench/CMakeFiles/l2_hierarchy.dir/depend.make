# Empty dependencies file for l2_hierarchy.
# This may be replaced when dependencies are built.

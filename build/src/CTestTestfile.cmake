# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("casa/support")
subdirs("casa/prog")
subdirs("casa/trace")
subdirs("casa/traceopt")
subdirs("casa/cachesim")
subdirs("casa/conflict")
subdirs("casa/energy")
subdirs("casa/placement")
subdirs("casa/ilp")
subdirs("casa/core")
subdirs("casa/io")
subdirs("casa/baseline")
subdirs("casa/loopcache")
subdirs("casa/memsim")
subdirs("casa/data")
subdirs("casa/overlay")
subdirs("casa/wcet")
subdirs("casa/workloads")
subdirs("casa/report")

# Empty compiler generated dependencies file for casa_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcasa_workloads.a"
)

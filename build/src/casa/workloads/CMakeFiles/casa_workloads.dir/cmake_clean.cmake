file(REMOVE_RECURSE
  "CMakeFiles/casa_workloads.dir/workloads.cpp.o"
  "CMakeFiles/casa_workloads.dir/workloads.cpp.o.d"
  "libcasa_workloads.a"
  "libcasa_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

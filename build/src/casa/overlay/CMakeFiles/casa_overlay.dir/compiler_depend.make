# Empty compiler generated dependencies file for casa_overlay.
# This may be replaced when dependencies are built.

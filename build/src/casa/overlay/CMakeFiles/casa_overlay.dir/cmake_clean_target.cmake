file(REMOVE_RECURSE
  "libcasa_overlay.a"
)

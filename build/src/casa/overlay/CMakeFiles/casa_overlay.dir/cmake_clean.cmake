file(REMOVE_RECURSE
  "CMakeFiles/casa_overlay.dir/overlay_ilp.cpp.o"
  "CMakeFiles/casa_overlay.dir/overlay_ilp.cpp.o.d"
  "CMakeFiles/casa_overlay.dir/overlay_sim.cpp.o"
  "CMakeFiles/casa_overlay.dir/overlay_sim.cpp.o.d"
  "CMakeFiles/casa_overlay.dir/phase_profile.cpp.o"
  "CMakeFiles/casa_overlay.dir/phase_profile.cpp.o.d"
  "libcasa_overlay.a"
  "libcasa_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

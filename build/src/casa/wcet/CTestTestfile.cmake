# CMake generated Testfile for 
# Source directory: /root/repo/src/casa/wcet
# Build directory: /root/repo/build/src/casa/wcet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

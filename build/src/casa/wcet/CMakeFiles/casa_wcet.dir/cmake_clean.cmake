file(REMOVE_RECURSE
  "CMakeFiles/casa_wcet.dir/block_costs.cpp.o"
  "CMakeFiles/casa_wcet.dir/block_costs.cpp.o.d"
  "CMakeFiles/casa_wcet.dir/wcet.cpp.o"
  "CMakeFiles/casa_wcet.dir/wcet.cpp.o.d"
  "libcasa_wcet.a"
  "libcasa_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

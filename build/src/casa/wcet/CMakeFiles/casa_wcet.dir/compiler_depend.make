# Empty compiler generated dependencies file for casa_wcet.
# This may be replaced when dependencies are built.

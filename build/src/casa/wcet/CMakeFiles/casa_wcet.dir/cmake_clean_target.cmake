file(REMOVE_RECURSE
  "libcasa_wcet.a"
)

file(REMOVE_RECURSE
  "libcasa_energy.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/casa_energy.dir/cache_energy.cpp.o"
  "CMakeFiles/casa_energy.dir/cache_energy.cpp.o.d"
  "CMakeFiles/casa_energy.dir/energy_table.cpp.o"
  "CMakeFiles/casa_energy.dir/energy_table.cpp.o.d"
  "CMakeFiles/casa_energy.dir/loopcache_energy.cpp.o"
  "CMakeFiles/casa_energy.dir/loopcache_energy.cpp.o.d"
  "CMakeFiles/casa_energy.dir/main_memory.cpp.o"
  "CMakeFiles/casa_energy.dir/main_memory.cpp.o.d"
  "CMakeFiles/casa_energy.dir/spm_energy.cpp.o"
  "CMakeFiles/casa_energy.dir/spm_energy.cpp.o.d"
  "CMakeFiles/casa_energy.dir/sram_array.cpp.o"
  "CMakeFiles/casa_energy.dir/sram_array.cpp.o.d"
  "libcasa_energy.a"
  "libcasa_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for casa_energy.
# This may be replaced when dependencies are built.

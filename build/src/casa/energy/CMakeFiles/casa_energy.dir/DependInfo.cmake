
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casa/energy/cache_energy.cpp" "src/casa/energy/CMakeFiles/casa_energy.dir/cache_energy.cpp.o" "gcc" "src/casa/energy/CMakeFiles/casa_energy.dir/cache_energy.cpp.o.d"
  "/root/repo/src/casa/energy/energy_table.cpp" "src/casa/energy/CMakeFiles/casa_energy.dir/energy_table.cpp.o" "gcc" "src/casa/energy/CMakeFiles/casa_energy.dir/energy_table.cpp.o.d"
  "/root/repo/src/casa/energy/loopcache_energy.cpp" "src/casa/energy/CMakeFiles/casa_energy.dir/loopcache_energy.cpp.o" "gcc" "src/casa/energy/CMakeFiles/casa_energy.dir/loopcache_energy.cpp.o.d"
  "/root/repo/src/casa/energy/main_memory.cpp" "src/casa/energy/CMakeFiles/casa_energy.dir/main_memory.cpp.o" "gcc" "src/casa/energy/CMakeFiles/casa_energy.dir/main_memory.cpp.o.d"
  "/root/repo/src/casa/energy/spm_energy.cpp" "src/casa/energy/CMakeFiles/casa_energy.dir/spm_energy.cpp.o" "gcc" "src/casa/energy/CMakeFiles/casa_energy.dir/spm_energy.cpp.o.d"
  "/root/repo/src/casa/energy/sram_array.cpp" "src/casa/energy/CMakeFiles/casa_energy.dir/sram_array.cpp.o" "gcc" "src/casa/energy/CMakeFiles/casa_energy.dir/sram_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/casa/cachesim/CMakeFiles/casa_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/support/CMakeFiles/casa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for casa_data.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/casa_data.dir/data_model.cpp.o"
  "CMakeFiles/casa_data.dir/data_model.cpp.o.d"
  "CMakeFiles/casa_data.dir/data_sim.cpp.o"
  "CMakeFiles/casa_data.dir/data_sim.cpp.o.d"
  "CMakeFiles/casa_data.dir/unified_alloc.cpp.o"
  "CMakeFiles/casa_data.dir/unified_alloc.cpp.o.d"
  "libcasa_data.a"
  "libcasa_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcasa_data.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/casa_core.dir/allocator.cpp.o"
  "CMakeFiles/casa_core.dir/allocator.cpp.o.d"
  "CMakeFiles/casa_core.dir/casa_branch_bound.cpp.o"
  "CMakeFiles/casa_core.dir/casa_branch_bound.cpp.o.d"
  "CMakeFiles/casa_core.dir/formulation.cpp.o"
  "CMakeFiles/casa_core.dir/formulation.cpp.o.d"
  "CMakeFiles/casa_core.dir/greedy.cpp.o"
  "CMakeFiles/casa_core.dir/greedy.cpp.o.d"
  "CMakeFiles/casa_core.dir/multi_spm.cpp.o"
  "CMakeFiles/casa_core.dir/multi_spm.cpp.o.d"
  "CMakeFiles/casa_core.dir/problem.cpp.o"
  "CMakeFiles/casa_core.dir/problem.cpp.o.d"
  "libcasa_core.a"
  "libcasa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

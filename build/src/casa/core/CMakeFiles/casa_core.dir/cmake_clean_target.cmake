file(REMOVE_RECURSE
  "libcasa_core.a"
)

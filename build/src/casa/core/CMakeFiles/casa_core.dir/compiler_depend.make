# Empty compiler generated dependencies file for casa_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcasa_placement.a"
)

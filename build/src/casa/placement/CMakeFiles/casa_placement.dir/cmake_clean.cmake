file(REMOVE_RECURSE
  "CMakeFiles/casa_placement.dir/placement.cpp.o"
  "CMakeFiles/casa_placement.dir/placement.cpp.o.d"
  "libcasa_placement.a"
  "libcasa_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

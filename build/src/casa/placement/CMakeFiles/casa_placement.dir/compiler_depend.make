# Empty compiler generated dependencies file for casa_placement.
# This may be replaced when dependencies are built.

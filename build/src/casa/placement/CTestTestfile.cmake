# CMake generated Testfile for 
# Source directory: /root/repo/src/casa/placement
# Build directory: /root/repo/build/src/casa/placement
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "libcasa_cachesim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/casa_cachesim.dir/cache.cpp.o"
  "CMakeFiles/casa_cachesim.dir/cache.cpp.o.d"
  "libcasa_cachesim.a"
  "libcasa_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

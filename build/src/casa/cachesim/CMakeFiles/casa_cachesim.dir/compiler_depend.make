# Empty compiler generated dependencies file for casa_cachesim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/casa_ilp.dir/branch_bound.cpp.o"
  "CMakeFiles/casa_ilp.dir/branch_bound.cpp.o.d"
  "CMakeFiles/casa_ilp.dir/knapsack.cpp.o"
  "CMakeFiles/casa_ilp.dir/knapsack.cpp.o.d"
  "CMakeFiles/casa_ilp.dir/model.cpp.o"
  "CMakeFiles/casa_ilp.dir/model.cpp.o.d"
  "CMakeFiles/casa_ilp.dir/simplex.cpp.o"
  "CMakeFiles/casa_ilp.dir/simplex.cpp.o.d"
  "libcasa_ilp.a"
  "libcasa_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casa/ilp/branch_bound.cpp" "src/casa/ilp/CMakeFiles/casa_ilp.dir/branch_bound.cpp.o" "gcc" "src/casa/ilp/CMakeFiles/casa_ilp.dir/branch_bound.cpp.o.d"
  "/root/repo/src/casa/ilp/knapsack.cpp" "src/casa/ilp/CMakeFiles/casa_ilp.dir/knapsack.cpp.o" "gcc" "src/casa/ilp/CMakeFiles/casa_ilp.dir/knapsack.cpp.o.d"
  "/root/repo/src/casa/ilp/model.cpp" "src/casa/ilp/CMakeFiles/casa_ilp.dir/model.cpp.o" "gcc" "src/casa/ilp/CMakeFiles/casa_ilp.dir/model.cpp.o.d"
  "/root/repo/src/casa/ilp/simplex.cpp" "src/casa/ilp/CMakeFiles/casa_ilp.dir/simplex.cpp.o" "gcc" "src/casa/ilp/CMakeFiles/casa_ilp.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/casa/support/CMakeFiles/casa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcasa_ilp.a"
)

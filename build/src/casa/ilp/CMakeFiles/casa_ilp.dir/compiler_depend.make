# Empty compiler generated dependencies file for casa_ilp.
# This may be replaced when dependencies are built.

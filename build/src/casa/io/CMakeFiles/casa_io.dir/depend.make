# Empty dependencies file for casa_io.
# This may be replaced when dependencies are built.

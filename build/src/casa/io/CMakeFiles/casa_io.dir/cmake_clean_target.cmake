file(REMOVE_RECURSE
  "libcasa_io.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/casa_io.dir/serialize.cpp.o"
  "CMakeFiles/casa_io.dir/serialize.cpp.o.d"
  "libcasa_io.a"
  "libcasa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

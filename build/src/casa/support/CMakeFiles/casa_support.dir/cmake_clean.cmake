file(REMOVE_RECURSE
  "CMakeFiles/casa_support.dir/args.cpp.o"
  "CMakeFiles/casa_support.dir/args.cpp.o.d"
  "CMakeFiles/casa_support.dir/error.cpp.o"
  "CMakeFiles/casa_support.dir/error.cpp.o.d"
  "CMakeFiles/casa_support.dir/rng.cpp.o"
  "CMakeFiles/casa_support.dir/rng.cpp.o.d"
  "CMakeFiles/casa_support.dir/table.cpp.o"
  "CMakeFiles/casa_support.dir/table.cpp.o.d"
  "libcasa_support.a"
  "libcasa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

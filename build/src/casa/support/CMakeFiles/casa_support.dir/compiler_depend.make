# Empty compiler generated dependencies file for casa_support.
# This may be replaced when dependencies are built.

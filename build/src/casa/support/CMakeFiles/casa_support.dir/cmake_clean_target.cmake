file(REMOVE_RECURSE
  "libcasa_support.a"
)

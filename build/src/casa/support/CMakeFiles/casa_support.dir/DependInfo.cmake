
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casa/support/args.cpp" "src/casa/support/CMakeFiles/casa_support.dir/args.cpp.o" "gcc" "src/casa/support/CMakeFiles/casa_support.dir/args.cpp.o.d"
  "/root/repo/src/casa/support/error.cpp" "src/casa/support/CMakeFiles/casa_support.dir/error.cpp.o" "gcc" "src/casa/support/CMakeFiles/casa_support.dir/error.cpp.o.d"
  "/root/repo/src/casa/support/rng.cpp" "src/casa/support/CMakeFiles/casa_support.dir/rng.cpp.o" "gcc" "src/casa/support/CMakeFiles/casa_support.dir/rng.cpp.o.d"
  "/root/repo/src/casa/support/table.cpp" "src/casa/support/CMakeFiles/casa_support.dir/table.cpp.o" "gcc" "src/casa/support/CMakeFiles/casa_support.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcasa_loopcache.a"
)

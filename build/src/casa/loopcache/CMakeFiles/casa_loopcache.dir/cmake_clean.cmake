file(REMOVE_RECURSE
  "CMakeFiles/casa_loopcache.dir/loop_cache.cpp.o"
  "CMakeFiles/casa_loopcache.dir/loop_cache.cpp.o.d"
  "CMakeFiles/casa_loopcache.dir/ross_allocator.cpp.o"
  "CMakeFiles/casa_loopcache.dir/ross_allocator.cpp.o.d"
  "libcasa_loopcache.a"
  "libcasa_loopcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_loopcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

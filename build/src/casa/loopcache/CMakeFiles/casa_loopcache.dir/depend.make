# Empty dependencies file for casa_loopcache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/casa_traceopt.dir/layout.cpp.o"
  "CMakeFiles/casa_traceopt.dir/layout.cpp.o.d"
  "CMakeFiles/casa_traceopt.dir/memory_object.cpp.o"
  "CMakeFiles/casa_traceopt.dir/memory_object.cpp.o.d"
  "CMakeFiles/casa_traceopt.dir/trace_formation.cpp.o"
  "CMakeFiles/casa_traceopt.dir/trace_formation.cpp.o.d"
  "libcasa_traceopt.a"
  "libcasa_traceopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_traceopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcasa_traceopt.a"
)

# Empty dependencies file for casa_traceopt.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casa/traceopt/layout.cpp" "src/casa/traceopt/CMakeFiles/casa_traceopt.dir/layout.cpp.o" "gcc" "src/casa/traceopt/CMakeFiles/casa_traceopt.dir/layout.cpp.o.d"
  "/root/repo/src/casa/traceopt/memory_object.cpp" "src/casa/traceopt/CMakeFiles/casa_traceopt.dir/memory_object.cpp.o" "gcc" "src/casa/traceopt/CMakeFiles/casa_traceopt.dir/memory_object.cpp.o.d"
  "/root/repo/src/casa/traceopt/trace_formation.cpp" "src/casa/traceopt/CMakeFiles/casa_traceopt.dir/trace_formation.cpp.o" "gcc" "src/casa/traceopt/CMakeFiles/casa_traceopt.dir/trace_formation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/casa/trace/CMakeFiles/casa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/prog/CMakeFiles/casa_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/casa/support/CMakeFiles/casa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcasa_conflict.a"
)

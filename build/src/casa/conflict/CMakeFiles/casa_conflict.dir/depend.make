# Empty dependencies file for casa_conflict.
# This may be replaced when dependencies are built.

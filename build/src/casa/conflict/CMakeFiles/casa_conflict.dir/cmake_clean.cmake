file(REMOVE_RECURSE
  "CMakeFiles/casa_conflict.dir/conflict_graph.cpp.o"
  "CMakeFiles/casa_conflict.dir/conflict_graph.cpp.o.d"
  "CMakeFiles/casa_conflict.dir/graph_builder.cpp.o"
  "CMakeFiles/casa_conflict.dir/graph_builder.cpp.o.d"
  "libcasa_conflict.a"
  "libcasa_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

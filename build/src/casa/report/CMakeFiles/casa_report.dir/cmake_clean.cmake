file(REMOVE_RECURSE
  "CMakeFiles/casa_report.dir/workbench.cpp.o"
  "CMakeFiles/casa_report.dir/workbench.cpp.o.d"
  "libcasa_report.a"
  "libcasa_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

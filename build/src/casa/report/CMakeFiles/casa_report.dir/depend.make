# Empty dependencies file for casa_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcasa_report.a"
)

file(REMOVE_RECURSE
  "libcasa_memsim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/casa_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/casa_memsim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/casa_memsim.dir/two_level.cpp.o"
  "CMakeFiles/casa_memsim.dir/two_level.cpp.o.d"
  "libcasa_memsim.a"
  "libcasa_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

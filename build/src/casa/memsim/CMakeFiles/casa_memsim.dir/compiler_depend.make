# Empty compiler generated dependencies file for casa_memsim.
# This may be replaced when dependencies are built.

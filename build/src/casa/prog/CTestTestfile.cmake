# CMake generated Testfile for 
# Source directory: /root/repo/src/casa/prog
# Build directory: /root/repo/build/src/casa/prog
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

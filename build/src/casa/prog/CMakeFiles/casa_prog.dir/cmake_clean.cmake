file(REMOVE_RECURSE
  "CMakeFiles/casa_prog.dir/builder.cpp.o"
  "CMakeFiles/casa_prog.dir/builder.cpp.o.d"
  "CMakeFiles/casa_prog.dir/program.cpp.o"
  "CMakeFiles/casa_prog.dir/program.cpp.o.d"
  "CMakeFiles/casa_prog.dir/stmt.cpp.o"
  "CMakeFiles/casa_prog.dir/stmt.cpp.o.d"
  "libcasa_prog.a"
  "libcasa_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcasa_prog.a"
)

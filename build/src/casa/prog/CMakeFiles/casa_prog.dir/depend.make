# Empty dependencies file for casa_prog.
# This may be replaced when dependencies are built.

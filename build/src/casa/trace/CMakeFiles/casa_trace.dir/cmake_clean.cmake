file(REMOVE_RECURSE
  "CMakeFiles/casa_trace.dir/executor.cpp.o"
  "CMakeFiles/casa_trace.dir/executor.cpp.o.d"
  "CMakeFiles/casa_trace.dir/profile.cpp.o"
  "CMakeFiles/casa_trace.dir/profile.cpp.o.d"
  "libcasa_trace.a"
  "libcasa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

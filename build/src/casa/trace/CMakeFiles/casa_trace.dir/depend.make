# Empty dependencies file for casa_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcasa_trace.a"
)

# Empty compiler generated dependencies file for casa_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcasa_baseline.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/casa_baseline.dir/steinke.cpp.o"
  "CMakeFiles/casa_baseline.dir/steinke.cpp.o.d"
  "libcasa_baseline.a"
  "libcasa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

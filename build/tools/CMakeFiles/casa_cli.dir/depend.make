# Empty dependencies file for casa_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/casa_cli.dir/casa_cli.cpp.o"
  "CMakeFiles/casa_cli.dir/casa_cli.cpp.o.d"
  "casa_cli"
  "casa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

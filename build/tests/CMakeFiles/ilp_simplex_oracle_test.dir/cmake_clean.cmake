file(REMOVE_RECURSE
  "CMakeFiles/ilp_simplex_oracle_test.dir/ilp_simplex_oracle_test.cpp.o"
  "CMakeFiles/ilp_simplex_oracle_test.dir/ilp_simplex_oracle_test.cpp.o.d"
  "ilp_simplex_oracle_test"
  "ilp_simplex_oracle_test.pdb"
  "ilp_simplex_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_simplex_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

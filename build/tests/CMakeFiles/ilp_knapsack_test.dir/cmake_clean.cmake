file(REMOVE_RECURSE
  "CMakeFiles/ilp_knapsack_test.dir/ilp_knapsack_test.cpp.o"
  "CMakeFiles/ilp_knapsack_test.dir/ilp_knapsack_test.cpp.o.d"
  "ilp_knapsack_test"
  "ilp_knapsack_test.pdb"
  "ilp_knapsack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_knapsack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

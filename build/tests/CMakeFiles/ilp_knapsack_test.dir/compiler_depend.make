# Empty compiler generated dependencies file for ilp_knapsack_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/two_level_test.dir/two_level_test.cpp.o"
  "CMakeFiles/two_level_test.dir/two_level_test.cpp.o.d"
  "two_level_test"
  "two_level_test.pdb"
  "two_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_problem_test.dir/core_problem_test.cpp.o"
  "CMakeFiles/core_problem_test.dir/core_problem_test.cpp.o.d"
  "core_problem_test"
  "core_problem_test.pdb"
  "core_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

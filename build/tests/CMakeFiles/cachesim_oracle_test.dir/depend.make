# Empty dependencies file for cachesim_oracle_test.
# This may be replaced when dependencies are built.

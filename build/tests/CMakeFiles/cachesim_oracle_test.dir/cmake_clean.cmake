file(REMOVE_RECURSE
  "CMakeFiles/cachesim_oracle_test.dir/cachesim_oracle_test.cpp.o"
  "CMakeFiles/cachesim_oracle_test.dir/cachesim_oracle_test.cpp.o.d"
  "cachesim_oracle_test"
  "cachesim_oracle_test.pdb"
  "cachesim_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

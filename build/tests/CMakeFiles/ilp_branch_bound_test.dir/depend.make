# Empty dependencies file for ilp_branch_bound_test.
# This may be replaced when dependencies are built.

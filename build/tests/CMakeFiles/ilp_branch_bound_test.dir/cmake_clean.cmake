file(REMOVE_RECURSE
  "CMakeFiles/ilp_branch_bound_test.dir/ilp_branch_bound_test.cpp.o"
  "CMakeFiles/ilp_branch_bound_test.dir/ilp_branch_bound_test.cpp.o.d"
  "ilp_branch_bound_test"
  "ilp_branch_bound_test.pdb"
  "ilp_branch_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_branch_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

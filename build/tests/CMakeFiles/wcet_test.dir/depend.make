# Empty dependencies file for wcet_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wcet_test.dir/wcet_test.cpp.o"
  "CMakeFiles/wcet_test.dir/wcet_test.cpp.o.d"
  "wcet_test"
  "wcet_test.pdb"
  "wcet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/loopcache_test.dir/loopcache_test.cpp.o"
  "CMakeFiles/loopcache_test.dir/loopcache_test.cpp.o.d"
  "loopcache_test"
  "loopcache_test.pdb"
  "loopcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for loopcache_test.
# This may be replaced when dependencies are built.

// Extension bench — WCET tightening (paper §1: scratchpads "allow tighter
// bounds on WCET prediction of the system").
//
// For each workload at its paper cache: the sound always-miss WCET bound
// with no scratchpad, the same bound after CASA moves hot objects onto the
// scratchpad (deterministic single-cycle fetches), the unsound always-hit
// floor, and the observed cycle count of an actual simulated run.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/wcet/block_costs.hpp"
#include "casa/wcet/wcet.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  std::cout << "WCET bounds (IPET over the CFG; cycles in millions)\n\n";

  Table table({"workload", "SPM B", "bound cache-only", "bound CASA+SPM",
               "tightening %", "observed run", "floor (always-hit)",
               "ipet==structural"});

  for (const std::string name : {"adpcm", "g721", "epic", "pegwit"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);
    const Bytes spm = workloads::paper_spm_sizes_for(name).back();

    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = spm;
    const auto tp =
        traceopt::form_traces(program, bench.execution().profile, topt);
    const auto layout = traceopt::layout_all(tp);

    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, spm)).value();

    wcet::BlockCostOptions opt;
    opt.cache = cache;
    const std::vector<bool> none(tp.object_count(), false);
    const auto cost_base = wcet::block_cycle_costs(tp, layout, none, opt);
    const auto cost_spm =
        wcet::block_cycle_costs(tp, layout, casa_run.alloc().on_spm, opt);
    opt.assumption = wcet::CacheAssumption::kAlwaysHit;
    const auto cost_floor = wcet::block_cycle_costs(tp, layout, none, opt);

    const std::uint64_t base = wcet::ipet_wcet(program, cost_base);
    const std::uint64_t with_spm = wcet::ipet_wcet(program, cost_spm);
    const std::uint64_t floor = wcet::ipet_wcet(program, cost_floor);
    const bool agree =
        base == wcet::structural_wcet(program, cost_base) &&
        with_spm == wcet::structural_wcet(program, cost_spm);

    table.row()
        .cell(name)
        .cell(spm)
        .cell(static_cast<double>(base) / 1e6, 3)
        .cell(static_cast<double>(with_spm) / 1e6, 3)
        .cell(100.0 * (1.0 - static_cast<double>(with_spm) /
                                 static_cast<double>(base)),
              1)
        .cell(static_cast<double>(casa_run.sim.counters.cycles) / 1e6, 3)
        .cell(static_cast<double>(floor) / 1e6, 3)
        .cell(agree ? "yes" : "NO");
  }

  table.print(std::cout);
  std::cout << "\nSoundness: every bound must dominate the observed run;"
               " tightening is the paper's predictability argument made"
               " quantitative.\n";
  return 0;
}

// Ablation B — the paper's linearization (13)-(15) with binary L versus the
// standard tight linearization (L >= l_i + l_j - 1, continuous L).
//
// Both must find the same optimum (the integer polytopes coincide at
// binary l); the point of the ablation is the branch & bound effort. The
// specialized combinatorial solver is shown for reference.
#include <chrono>
#include <iostream>

#include "casa/conflict/graph_builder.hpp"
#include "casa/core/casa_branch_bound.hpp"
#include "casa/core/formulation.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/support/table.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

namespace {

core::SavingsProblem make_instance(const std::string& name, Bytes spm) {
  const prog::Program program = workloads::by_name(name);
  const auto exec = trace::Executor::run(program);
  const auto cache = workloads::paper_cache_for(name);
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache.line_size;
  topt.max_trace_size = spm;
  const auto tp = traceopt::form_traces(program, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  conflict::BuildOptions bopt;
  bopt.cache = cache;
  const auto graph =
      conflict::build_conflict_graph(tp, layout, exec.walk, bopt);
  const auto energies = energy::EnergyTable::build(cache, spm, 0, 0);
  return core::presolve(core::CasaProblem::from(tp, graph, energies, spm));
}

struct RunResult {
  double energy = 0;
  std::uint64_t nodes = 0;
  double seconds = 0;
};

RunResult run_generic(const core::SavingsProblem& sp,
                      core::Linearization lin) {
  const auto t0 = std::chrono::steady_clock::now();
  const core::CasaModel cm = core::build_casa_model(sp, lin);
  ilp::BranchAndBoundOptions opt;
  opt.branch_priority.assign(cm.model.var_count(), 0);
  for (const VarId l : cm.l_vars) opt.branch_priority[l.index()] = 1;
  opt.max_nodes = 200000;
  ilp::BranchAndBound solver(opt);
  const ilp::Solution sol = solver.solve(cm.model);
  RunResult r;
  r.energy = sol.status == ilp::SolveStatus::kOptimal
                 ? cm.objective_offset + sol.objective
                 : -1.0;
  r.nodes = solver.last_node_count();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace

int main() {
  std::cout << "Ablation B — paper linearization (binary L, constraints"
               " 13-15) vs tight linearization (continuous L)\n"
               "Identical optima expected; column of interest: B&B nodes.\n\n";

  Table table({"instance", "items", "edges", "paper uJ", "tight uJ",
               "spec uJ", "paper nodes", "tight nodes", "paper s",
               "tight s"});

  const std::pair<const char*, Bytes> instances[] = {
      {"adpcm", 64}, {"adpcm", 128}, {"adpcm", 256}, {"epic", 128}};

  for (const auto& [name, spm] : instances) {
    const core::SavingsProblem sp = make_instance(name, spm);
    const RunResult paper = run_generic(sp, core::Linearization::kPaper);
    const RunResult tight = run_generic(sp, core::Linearization::kTight);
    const auto spec = core::CasaBranchBound().solve(sp);

    table.row()
        .cell(std::string(name) + "@" + std::to_string(spm))
        .cell(static_cast<std::uint64_t>(sp.item_count()))
        .cell(static_cast<std::uint64_t>(sp.edges.size()))
        .cell(paper.energy >= 0 ? to_micro_joules(paper.energy) : -1.0, 2)
        .cell(to_micro_joules(tight.energy), 2)
        .cell(to_micro_joules(sp.energy_for(spec.chosen)), 2)
        .cell(paper.nodes)
        .cell(tight.nodes)
        .cell(paper.seconds, 3)
        .cell(tight.seconds, 3);
  }

  table.print(std::cout);
  std::cout << "\n(-1 in 'paper uJ' means the node budget of 200k was hit"
               " before the optimality proof.)\n";
  return 0;
}

// Ablation E — loop-cache preloadable-region budget.
//
// The paper's architectural argument against preloaded loop caches: the
// controller limits them to a handful of regions (2-6), so added capacity
// stops paying off once the region budget is spent — while the scratchpad
// (software-managed, no controller) keeps scaling. This sweeps the region
// budget on MPEG.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  const prog::Program program = workloads::make_mpeg();
  const report::Workbench bench(program);
  const auto cache = workloads::paper_cache_for("mpeg");

  std::cout << "Ablation E — loop cache region budget on MPEG ("
            << cache.size << "B I-cache); CASA scratchpad for scale\n\n";

  Table table({"size B", "regions", "LC uJ", "LC acc %fetch", "regions used",
               "CASA SPM uJ"});

  for (const Bytes size : workloads::paper_spm_sizes_for("mpeg")) {
    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, size)).value();
    for (const unsigned regions : {2u, 4u, 8u}) {
      const report::Outcome lc = bench.evaluate(report::Workbench::Job::loopcache_job(cache, size, regions)).value();
      table.row()
          .cell(size)
          .cell(static_cast<std::uint64_t>(regions))
          .cell(to_micro_joules(lc.sim.total_energy), 1)
          .cell(100.0 * static_cast<double>(lc.sim.counters.lc_accesses) /
                    static_cast<double>(lc.sim.counters.total_fetches),
                1)
          .cell(static_cast<std::uint64_t>(lc.lc_regions()))
          .cell(to_micro_joules(casa_run.sim.total_energy), 1);
    }
    table.separator();
  }

  table.print(std::cout);
  return 0;
}

// Ablation C — cache geometry / replacement sweep (the paper's claim that
// CASA "can be easily applied to any memory hierarchy").
//
// Runs CASA vs Steinke on g721 across associativities and replacement
// policies at a fixed 1 kB capacity and 256 B scratchpad. Higher
// associativity reduces conflict misses and with them CASA's edge — the
// crossover structure is the interesting output.
//
// The 9 configurations × 3 flows go through sim::SweepPlanner: jobs that
// feed the cache the same fetch stream share one stack-distance replay
// (LRU rows), the rest fall back to per-config simulation — outcomes and
// per-row outputs are bit-identical to the serial evaluate_batch runs.
#include <fstream>
#include <iostream>

#include "casa/obs/export.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/report/workbench.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/sim/sweep_planner.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  obs::MetricsRegistry metrics;
  metrics.set_config("workload", "g721");
  const prog::Program program = workloads::make_g721();
  report::WorkbenchOptions wopt;
  wopt.metrics = &metrics;
  const report::Workbench bench(program, wopt);
  const Bytes spm = 256;

  std::cout << "Ablation C — CASA vs Steinke on g721 across cache"
               " configurations (1 kB cache, 256 B scratchpad)\n\n";

  const unsigned assocs[] = {1u, 2u, 4u};
  const cachesim::ReplacementPolicy policies[] = {
      cachesim::ReplacementPolicy::kLru, cachesim::ReplacementPolicy::kFifo,
      cachesim::ReplacementPolicy::kRoundRobin};

  // Three jobs per configuration: CASA, Steinke, cache-only reference.
  std::vector<report::Workbench::Job> jobs;
  for (const unsigned assoc : assocs) {
    for (const auto policy : policies) {
      cachesim::CacheConfig cache = workloads::paper_cache_for("g721");
      cache.associativity = assoc;
      cache.policy = policy;
      jobs.push_back(report::Workbench::Job::casa_job(cache, spm));
      jobs.push_back(report::Workbench::Job::steinke_job(cache, spm));
      jobs.push_back(report::Workbench::Job::cache_only_job(cache));
    }
  }
  sim::MetricsShards shards(jobs.size());
  const std::vector<report::Outcome> outcomes =
      sim::SweepPlanner(bench).run(jobs, 0, &shards);

  Table table({"assoc", "policy", "conflict edges", "CASA uJ", "Steinke uJ",
               "improv %", "CASA miss %", "cache-only uJ"});
  std::size_t j = 0;
  for (const unsigned assoc : assocs) {
    for (const auto policy : policies) {
      const report::Outcome& c = outcomes[j++];
      const report::Outcome& s = outcomes[j++];
      const report::Outcome& base = outcomes[j++];

      table.row()
          .cell(static_cast<std::uint64_t>(assoc))
          .cell(cachesim::to_string(policy))
          .cell(static_cast<std::uint64_t>(c.conflict_edges()))
          .cell(to_micro_joules(c.sim.total_energy), 1)
          .cell(to_micro_joules(s.sim.total_energy), 1)
          .cell(100.0 * (1.0 - c.sim.total_energy / s.sim.total_energy), 1)
          .cell(100.0 *
                    static_cast<double>(c.sim.counters.cache_misses) /
                    static_cast<double>(c.sim.counters.cache_accesses),
                2)
          .cell(to_micro_joules(base.sim.total_energy), 1);
    }
  }

  table.print(std::cout);

  const std::vector<obs::MetricsSnapshot> tasks = shards.snapshots();
  obs::ArtifactOptions aopt;
  aopt.tool = "ablation_cache_config";
  aopt.tasks = &tasks;
  const char* artifact = "ablation_cache_config_metrics.json";
  std::ofstream out(artifact);
  if (out.good()) {
    obs::write_artifact_json(out, metrics.snapshot(), aopt);
    std::cout << "\ntelemetry artifact (" << tasks.size()
              << " tasks) written to " << artifact << "\n";
  }
  return 0;
}

// Solver-runtime benchmark (paper §4: "the maximum runtime of the ILP
// solver for our set of real-life benchmarks (upto 19.5kBytes program size)
// was found to be less than a second").
//
// Measures, per workload at its largest paper scratchpad size: the
// specialized branch & bound, the generic ILP with the tight linearization,
// and (on the small instance) the paper's literal linearization.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "casa/baseline/steinke.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/core/allocator.hpp"
#include "casa/core/casa_branch_bound.hpp"
#include "casa/core/formulation.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/ilp/branch_bound.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace {

using namespace casa;

/// Cached per-workload problem instance (profiling is not what we measure).
struct Instance {
  prog::Program program;
  core::SavingsProblem sp;
};

const Instance& instance(const std::string& name, Bytes spm) {
  static std::map<std::string, std::unique_ptr<Instance>> cache;
  const std::string key = name + "/" + std::to_string(spm);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  auto inst = std::make_unique<Instance>(
      Instance{workloads::by_name(name), core::SavingsProblem{}});
  const auto exec = trace::Executor::run(inst->program);
  const auto cache_cfg = workloads::paper_cache_for(name);
  traceopt::TraceFormationOptions topt;
  topt.cache_line_size = cache_cfg.line_size;
  topt.max_trace_size = spm;
  const auto tp = traceopt::form_traces(inst->program, exec.profile, topt);
  const auto layout = traceopt::layout_all(tp);
  conflict::BuildOptions bopt;
  bopt.cache = cache_cfg;
  const auto graph =
      conflict::build_conflict_graph(tp, layout, exec.walk, bopt);
  const auto energies = energy::EnergyTable::build(cache_cfg, spm, 0, 0);
  inst->sp = core::presolve(
      core::CasaProblem::from(tp, graph, energies, spm));
  it = cache.emplace(key, std::move(inst)).first;
  return *it->second;
}

void BM_SpecializedBnB(benchmark::State& state, const std::string& name,
                       Bytes spm) {
  const Instance& inst = instance(name, spm);
  for (auto _ : state) {
    core::CasaBranchBound solver;
    benchmark::DoNotOptimize(solver.solve(inst.sp));
  }
  state.counters["items"] = static_cast<double>(inst.sp.item_count());
  state.counters["edges"] = static_cast<double>(inst.sp.edges.size());
}

void BM_GenericIlpTight(benchmark::State& state, const std::string& name,
                        Bytes spm) {
  const Instance& inst = instance(name, spm);
  for (auto _ : state) {
    const core::CasaModel cm =
        core::build_casa_model(inst.sp, core::Linearization::kTight);
    ilp::BranchAndBound solver;
    benchmark::DoNotOptimize(solver.solve(cm.model));
  }
}

/// The production configuration of the generic solver on the largest
/// bundled workload: presolve + knapsack warm start + branch priorities,
/// tight linearization. Reports the explored node count as a counter so
/// tools/bench_check.sh can gate search effort alongside wall-clock.
void BM_GenericIlpWarmStarted(benchmark::State& state, const std::string& name,
                              Bytes spm) {
  const Instance& inst = instance(name, spm);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const core::CasaModel cm =
        core::build_casa_model(inst.sp, core::Linearization::kTight);
    ilp::BranchAndBoundOptions opt;
    opt.warm_hint = core::warm_assignment(
        cm, inst.sp,
        baseline::knapsack_seed(inst.sp.weight, inst.sp.value,
                                inst.sp.capacity));
    opt.branch_priority.assign(cm.model.var_count(), 0);
    for (const VarId l : cm.l_vars) opt.branch_priority[l.index()] = 1;
    ilp::BranchAndBound solver(opt);
    benchmark::DoNotOptimize(solver.solve(cm.model));
    nodes = solver.last_stats().nodes;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["items"] = static_cast<double>(inst.sp.item_count());
}

void BM_GenericIlpPaperLinearization(benchmark::State& state,
                                     const std::string& name, Bytes spm) {
  const Instance& inst = instance(name, spm);
  for (auto _ : state) {
    const core::CasaModel cm =
        core::build_casa_model(inst.sp, core::Linearization::kPaper);
    ilp::BranchAndBoundOptions opt;
    opt.branch_priority.assign(cm.model.var_count(), 0);
    for (const VarId l : cm.l_vars) opt.branch_priority[l.index()] = 1;
    ilp::BranchAndBound solver(opt);
    benchmark::DoNotOptimize(solver.solve(cm.model));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SpecializedBnB, adpcm_256, "adpcm", 256);
BENCHMARK_CAPTURE(BM_SpecializedBnB, g721_1024, "g721", 1024);
BENCHMARK_CAPTURE(BM_SpecializedBnB, mpeg_1024, "mpeg", 1024);
BENCHMARK_CAPTURE(BM_GenericIlpTight, adpcm_256, "adpcm", 256);
BENCHMARK_CAPTURE(BM_GenericIlpTight, g721_512, "g721", 512);
BENCHMARK_CAPTURE(BM_GenericIlpWarmStarted, mpeg_1024, "mpeg", 1024);
BENCHMARK_CAPTURE(BM_GenericIlpPaperLinearization, adpcm_64, "adpcm", 64);

BENCHMARK_MAIN();

// Ablation F — code placement vs scratchpad allocation.
//
// The paper's reference [14] (Tomiyama/Yasuura) fights I-cache misses with
// layout alone. This bench compares four designs on each workload:
//   natural layout           — the baseline everything else uses,
//   conflict-aware placement — reordering + bounded padding, no SPM,
//   SPM + CASA               — the paper's proposal, natural layout,
//   placement + SPM + CASA   — both techniques stacked (the conflict graph
//                              is re-profiled under the placed layout).
#include <iostream>

#include "casa/conflict/graph_builder.hpp"
#include "casa/core/allocator.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/placement/placement.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  std::cout << "Ablation F — layout optimization vs scratchpad allocation\n\n";

  Table table({"workload", "natural uJ", "padded uJ", "reordered uJ",
               "SPM+CASA uJ", "placed+SPM uJ", "pad B", "natural miss %",
               "padded miss %"});

  for (const std::string name : {"adpcm", "g721", "mpeg"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);
    const Bytes spm = workloads::paper_spm_sizes_for(name)[1];

    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = cache.line_size;
    topt.max_trace_size = spm;
    const auto tp =
        traceopt::form_traces(program, bench.execution().profile, topt);
    const auto natural = traceopt::layout_all(tp);
    conflict::BuildOptions bopt;
    bopt.cache = cache;
    const auto graph = conflict::build_conflict_graph(
        tp, natural, bench.execution().walk, bopt);

    placement::PlacementOptions popt;
    popt.cache = cache;
    const placement::PlacementResult placed =
        place_conflict_aware(tp, graph, popt);
    placement::PlacementOptions pad_only = popt;
    pad_only.reorder = false;
    const placement::PlacementResult padded =
        place_conflict_aware(tp, graph, pad_only);

    const auto energies = energy::EnergyTable::build(cache, spm, 0, 0);
    const std::vector<bool> none(tp.object_count(), false);

    const auto nat_run = memsim::simulate_spm_system(
        tp, natural, bench.execution().walk, none, cache, energies);
    const auto placed_run = memsim::simulate_spm_system(
        tp, placed.layout, bench.execution().walk, none, cache, energies);
    const auto padded_run = memsim::simulate_spm_system(
        tp, padded.layout, bench.execution().walk, none, cache, energies);

    // SPM + CASA on the natural layout (the standard pipeline).
    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, spm)).value();

    // Placement + CASA: re-profile conflicts under the placed layout, then
    // allocate and simulate there.
    const auto placed_graph = conflict::build_conflict_graph(
        tp, placed.layout, bench.execution().walk, bopt);
    const auto problem =
        core::CasaProblem::from(tp, placed_graph, energies, spm);
    const auto alloc = core::CasaAllocator().allocate(problem);
    const auto combo_run = memsim::simulate_spm_system(
        tp, placed.layout, bench.execution().walk, alloc.on_spm, cache,
        energies);

    table.row()
        .cell(name)
        .cell(to_micro_joules(nat_run.total_energy), 1)
        .cell(to_micro_joules(padded_run.total_energy), 1)
        .cell(to_micro_joules(placed_run.total_energy), 1)
        .cell(to_micro_joules(casa_run.sim.total_energy), 1)
        .cell(to_micro_joules(combo_run.total_energy), 1)
        .cell(padded.padding_bytes)
        .cell(100.0 * static_cast<double>(nat_run.counters.cache_misses) /
                  static_cast<double>(nat_run.counters.cache_accesses),
              2)
        .cell(100.0 * static_cast<double>(padded_run.counters.cache_misses) /
                  static_cast<double>(padded_run.counters.cache_accesses),
              2);
  }

  table.print(std::cout);
  std::cout << "\nPlacement alone removes only layout-dependent conflicts;"
               " the scratchpad also removes fetch energy — and the two"
               " compose.\n";
  return 0;
}

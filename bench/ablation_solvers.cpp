// Ablation D — allocator engine comparison: exact solvers vs the greedy
// marginal-density heuristic, on every paper instance.
//
// Reports the greedy optimality gap on the *model* objective and on the
// simulated energy, plus solver effort. A small gap would mean the ILP
// machinery is overkill; the gaps at small scratchpads justify it.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  std::cout << "Ablation D — exact ILP vs greedy heuristic\n\n";

  Table table({"workload", "SPM B", "exact uJ", "greedy uJ", "gap %",
               "exact nodes", "engine"});

  for (const std::string name : {"adpcm", "g721", "mpeg"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);

    for (const Bytes size : workloads::paper_spm_sizes_for(name)) {
      core::CasaOptions exact_opt;
      const report::Outcome exact = bench.evaluate(report::Workbench::Job::casa_job(cache, size, exact_opt)).value();
      core::CasaOptions greedy_opt;
      greedy_opt.engine = core::CasaEngine::kGreedy;
      const report::Outcome greedy = bench.evaluate(report::Workbench::Job::casa_job(cache, size, greedy_opt)).value();

      table.row()
          .cell(name)
          .cell(size)
          .cell(to_micro_joules(exact.sim.total_energy), 1)
          .cell(to_micro_joules(greedy.sim.total_energy), 1)
          .cell(100.0 * (greedy.sim.total_energy - exact.sim.total_energy) /
                    exact.sim.total_energy,
                2)
          .cell(exact.alloc().solver_nodes)
          .cell(core::to_string(exact.alloc().engine_used));
    }
    table.separator();
  }

  table.print(std::cout);
  return 0;
}

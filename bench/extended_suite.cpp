// Extended benchmark coverage (beyond the paper's three Mediabench
// programs): the Table-1 comparison on every bundled workload, including
// the epic/pegwit/gsm/jpeg stand-ins. A reproduction claim is stronger when
// the technique's ranking survives programs the algorithm was not tuned on.
//
// Per workload, all (spm size × flow) points go through one
// sim::SweepPlanner batch across cores — the suite is the repo's largest
// sweep; sweep points that feed the cache the same fetch stream share one
// stack-distance replay, and the outcomes stay bit-identical to
// Workbench::evaluate_batch.
#include <fstream>
#include <iostream>

#include "casa/obs/export.hpp"
#include "casa/obs/metrics.hpp"
#include "casa/report/workbench.hpp"
#include "casa/sim/parallel_runner.hpp"
#include "casa/sim/sweep_planner.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  std::cout << "Extended suite — CASA vs Steinke vs preloaded loop cache on"
               " all bundled workloads\n\n";

  Table table({"workload", "cache B", "SPM B", "CASA uJ", "Steinke uJ",
               "LC uJ", "vsSteinke %", "vsLC %"});

  // Suite-wide telemetry: every workload's sweep merges in here, and each
  // job keeps its own per-task snapshot for the artifact's "tasks" array.
  obs::MetricsRegistry metrics;
  std::vector<obs::MetricsSnapshot> task_snapshots;

  double sum_st = 0, sum_lc = 0;
  int rows = 0;
  for (const std::string& name : workloads::names()) {
    const prog::Program program = workloads::by_name(name);
    report::WorkbenchOptions wopt;
    wopt.metrics = &metrics;
    const report::Workbench bench(program, wopt);
    const auto cache = workloads::paper_cache_for(name);
    const std::vector<Bytes> spm_sizes = workloads::paper_spm_sizes_for(name);

    std::vector<report::Workbench::Job> jobs;
    for (const Bytes spm : spm_sizes) {
      jobs.push_back(report::Workbench::Job::casa_job(cache, spm));
      jobs.push_back(report::Workbench::Job::steinke_job(cache, spm));
      jobs.push_back(report::Workbench::Job::loopcache_job(cache, spm, 4));
    }
    sim::MetricsShards shards(jobs.size());
    const std::vector<report::Outcome> outcomes =
        sim::SweepPlanner(bench).run(jobs, 0, &shards);
    for (obs::MetricsSnapshot& task : shards.snapshots()) {
      task.config["workload"] = name;
      task_snapshots.push_back(std::move(task));
    }

    std::size_t j = 0;
    for (const Bytes spm : spm_sizes) {
      const report::Outcome& c = outcomes[j++];
      const report::Outcome& s = outcomes[j++];
      const report::Outcome& l = outcomes[j++];
      const double vs_st =
          100.0 * (1.0 - c.sim.total_energy / s.sim.total_energy);
      const double vs_lc =
          100.0 * (1.0 - c.sim.total_energy / l.sim.total_energy);
      sum_st += vs_st;
      sum_lc += vs_lc;
      ++rows;
      table.row()
          .cell(name)
          .cell(cache.size)
          .cell(spm)
          .cell(to_micro_joules(c.sim.total_energy), 1)
          .cell(to_micro_joules(s.sim.total_energy), 1)
          .cell(to_micro_joules(l.sim.total_energy), 1)
          .cell(vs_st, 1)
          .cell(vs_lc, 1);
    }
    table.separator();
  }

  table.print(std::cout);
  std::cout << "\naverages over " << rows << " configurations: CASA vs"
            << " Steinke " << sum_st / rows << "%, CASA vs loop cache "
            << sum_lc / rows << "%\n";

  obs::ArtifactOptions aopt;
  aopt.tool = "extended_suite";
  aopt.tasks = &task_snapshots;
  const char* artifact = "extended_suite_metrics.json";
  std::ofstream out(artifact);
  if (out.good()) {
    obs::write_artifact_json(out, metrics.snapshot(), aopt);
    std::cout << "telemetry artifact (" << task_snapshots.size()
              << " tasks) written to " << artifact << "\n";
  }
  return 0;
}

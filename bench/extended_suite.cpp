// Extended benchmark coverage (beyond the paper's three Mediabench
// programs): the Table-1 comparison on every bundled workload, including
// the epic/pegwit/gsm/jpeg stand-ins. A reproduction claim is stronger when
// the technique's ranking survives programs the algorithm was not tuned on.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  std::cout << "Extended suite — CASA vs Steinke vs preloaded loop cache on"
               " all bundled workloads\n\n";

  Table table({"workload", "cache B", "SPM B", "CASA uJ", "Steinke uJ",
               "LC uJ", "vsSteinke %", "vsLC %"});

  double sum_st = 0, sum_lc = 0;
  int rows = 0;
  for (const std::string& name : workloads::names()) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);
    for (const Bytes spm : workloads::paper_spm_sizes_for(name)) {
      const report::Outcome c = bench.run_casa(cache, spm);
      const report::Outcome s = bench.run_steinke(cache, spm);
      const report::Outcome l = bench.run_loopcache(cache, spm, 4);
      const double vs_st =
          100.0 * (1.0 - c.sim.total_energy / s.sim.total_energy);
      const double vs_lc =
          100.0 * (1.0 - c.sim.total_energy / l.sim.total_energy);
      sum_st += vs_st;
      sum_lc += vs_lc;
      ++rows;
      table.row()
          .cell(name)
          .cell(cache.size)
          .cell(spm)
          .cell(to_micro_joules(c.sim.total_energy), 1)
          .cell(to_micro_joules(s.sim.total_energy), 1)
          .cell(to_micro_joules(l.sim.total_energy), 1)
          .cell(vs_st, 1)
          .cell(vs_lc, 1);
    }
    table.separator();
  }

  table.print(std::cout);
  std::cout << "\naverages over " << rows << " configurations: CASA vs"
            << " Steinke " << sum_st / rows << "%, CASA vs loop cache "
            << sum_lc / rows << "%\n";
  return 0;
}

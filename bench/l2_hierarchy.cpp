// Extension bench — the paper's §4 multi-level claim: CASA needs no change
// when an L2 exists, because minimizing L1 misses minimizes the (subset)
// L2 misses too.
//
// For each workload: allocate with the unchanged L1-based CASA, then
// simulate both the one-level (L1 + off-chip) and two-level (L1 + 8 kB
// 4-way L2 + off-chip) systems, for the no-SPM baseline and the CASA
// allocation.
#include <iostream>

#include "casa/memsim/two_level.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  std::cout << "Two-level hierarchy — L1-based CASA under an added L2\n\n";

  cachesim::CacheConfig l2;
  l2.size = 8_KiB;
  l2.line_size = 32;
  l2.associativity = 4;

  Table table({"workload", "SPM B", "1-level base uJ", "1-level CASA uJ",
               "2-level base uJ", "2-level CASA uJ", "L1miss base", "L1miss CASA",
               "L2miss base", "L2miss CASA"});

  for (const std::string name : {"adpcm", "g721", "mpeg"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto l1 = workloads::paper_cache_for(name);
    const Bytes spm = workloads::paper_spm_sizes_for(name)[1];

    traceopt::TraceFormationOptions topt;
    topt.cache_line_size = l1.line_size;
    topt.max_trace_size = spm;
    const auto tp =
        traceopt::form_traces(program, bench.execution().profile, topt);
    const auto layout = traceopt::layout_all(tp);

    // The allocator is untouched: L1 conflict graph, L1 energies.
    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(l1, spm)).value();
    const report::Outcome base_run = bench.evaluate(report::Workbench::Job::cache_only_job(l1)).value();

    const auto energies = memsim::TwoLevelEnergies::build(l1, l2, spm);
    const std::vector<bool> none(tp.object_count(), false);
    const auto two_base = memsim::simulate_spm_two_level(
        tp, layout, bench.execution().walk, none, l1, l2, energies);
    const auto two_casa = memsim::simulate_spm_two_level(
        tp, layout, bench.execution().walk, casa_run.alloc().on_spm, l1, l2,
        energies);

    table.row()
        .cell(name)
        .cell(spm)
        .cell(to_micro_joules(base_run.sim.total_energy), 1)
        .cell(to_micro_joules(casa_run.sim.total_energy), 1)
        .cell(to_micro_joules(two_base.total_energy), 1)
        .cell(to_micro_joules(two_casa.total_energy), 1)
        .cell(two_base.counters.l1_misses)
        .cell(two_casa.counters.l1_misses)
        .cell(two_base.counters.l2_misses)
        .cell(two_casa.counters.l2_misses);
  }

  table.print(std::cout);
  std::cout << "\nExpected: the L1-based allocation cuts L1 misses, the L2"
               " miss column (a subset) falls with it, and the energy"
               " advantage survives the added level.\n";
  return 0;
}

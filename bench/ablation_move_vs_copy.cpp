// Ablation A — move vs copy semantics (DESIGN.md §5.2).
//
// The paper criticizes Steinke's allocator for *moving* objects to the
// scratchpad: the residual program is compacted, every remaining object's
// cache mapping shifts, and conflicts appear or vanish essentially at
// random. This bench isolates that effect by running the same Steinke
// selection under both semantics, next to CASA (always copy) for scale.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  std::cout << "Ablation A — Steinke selection under move vs copy"
               " semantics\n(move = paper-faithful Steinke; copy = CASA's"
               " layout-preserving placement)\n\n";

  Table table({"workload", "SPM B", "Steinke-move uJ", "Steinke-copy uJ",
               "move/copy %", "move miss", "copy miss", "CASA uJ"});

  for (const std::string name : {"adpcm", "g721", "mpeg"}) {
    const prog::Program program = workloads::by_name(name);
    report::WorkbenchOptions move_opt, copy_opt;
    move_opt.steinke_moves = true;
    copy_opt.steinke_moves = false;
    const report::Workbench moves(program, move_opt);
    const report::Workbench copies(program, copy_opt);
    const auto cache = workloads::paper_cache_for(name);

    for (const Bytes size : workloads::paper_spm_sizes_for(name)) {
      const report::Outcome m = moves.evaluate(report::Workbench::Job::steinke_job(cache, size)).value();
      const report::Outcome c = copies.evaluate(report::Workbench::Job::steinke_job(cache, size)).value();
      const report::Outcome casa_run = moves.evaluate(report::Workbench::Job::casa_job(cache, size)).value();
      table.row()
          .cell(name)
          .cell(size)
          .cell(to_micro_joules(m.sim.total_energy), 1)
          .cell(to_micro_joules(c.sim.total_energy), 1)
          .cell(100.0 * m.sim.total_energy / c.sim.total_energy, 1)
          .cell(m.sim.counters.cache_misses)
          .cell(c.sim.counters.cache_misses)
          .cell(to_micro_joules(casa_run.sim.total_energy), 1);
    }
    table.separator();
  }

  table.print(std::cout);
  std::cout << "\nmove/copy % far from 100% at a given size = the layout"
               " roulette the paper calls \"erratic results\".\n";
  return 0;
}

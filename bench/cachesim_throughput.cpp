// Substrate throughput: executor, cache simulator, conflict-graph builder
// and full hierarchy simulation on the MPEG workload. These bound the cost
// of every experiment in the repo (items/second = simulated fetches/s for
// the cache-level benchmarks).
//
// The compiled-stream pairs (BM_ConflictGraphBuild vs …WordRef,
// BM_HierarchySimulation vs …WordRef) measure the line-granular fetch
// stream against the word-granular reference on identical inputs; their
// items/sec ratio is the compiled-stream speedup. BM_ParallelSweep runs a
// fixed CASA design-space sweep through Workbench::evaluate_batch at 1/2/4
// threads; on a multi-core host items/sec should scale near-linearly.
// tools/bench_check.sh compares all of these against BENCH_cachesim.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "casa/cachesim/cache.hpp"
#include "casa/cachesim/stack_sim.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/fault/fault.hpp"
#include "casa/fault/site_names.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/obs/span.hpp"
#include "casa/obs/tracer.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/rng.hpp"
#include "casa/svc/service.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace {

using namespace casa;

struct Pipeline {
  prog::Program program = workloads::make_mpeg();
  trace::ExecutionResult exec = trace::Executor::run(program);
  traceopt::TraceProgram tp = traceopt::form_traces(program, exec.profile,
                                                    topts());
  traceopt::Layout layout = traceopt::layout_all(tp);

  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 512;
    return o;
  }
};

const Pipeline& pipeline() {
  static const Pipeline p;
  return p;
}

void BM_RawCacheAccess(benchmark::State& state) {
  cachesim::CacheConfig cfg;
  cfg.size = 2_KiB;
  cfg.line_size = 16;
  cfg.associativity = static_cast<unsigned>(state.range(0));
  cachesim::Cache cache(cfg);
  Rng rng(1);
  // Pre-generate an address stream resembling instruction fetch (mostly
  // sequential, occasional jumps).
  std::vector<Addr> stream(1 << 16);
  Addr pc = 0;
  for (auto& a : stream) {
    if (rng.next_bool(0.1)) pc = rng.next_below(32 * 1024) & ~3ull;
    a = pc;
    pc += 4;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(stream[i]));
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Line-granular access over the same kind of stream: one access_line call
// per 4-word run. Items = simulated word fetches, so the items/sec gap to
// BM_RawCacheAccess is the per-call amortization win.
void BM_RawCacheAccessLine(benchmark::State& state) {
  cachesim::CacheConfig cfg;
  cfg.size = 2_KiB;
  cfg.line_size = 16;
  cfg.associativity = static_cast<unsigned>(state.range(0));
  cachesim::Cache cache(cfg);
  Rng rng(1);
  const std::uint32_t words = static_cast<std::uint32_t>(cfg.line_size / 4);
  std::vector<Addr> stream(1 << 14);
  Addr pc = 0;
  for (auto& a : stream) {
    if (rng.next_bool(0.1)) {
      pc = rng.next_below(32 * 1024) & ~(cfg.line_size - 1);
    }
    a = pc;
    pc += cfg.line_size;
  }
  std::size_t i = 0;
  std::uint64_t fetched = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access_line(stream[i], words));
    fetched += words;
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fetched));
}

void BM_Executor(benchmark::State& state) {
  const prog::Program program = workloads::make_mpeg();
  for (auto _ : state) {
    trace::ExecutorOptions opt;
    opt.record_walk = false;
    benchmark::DoNotOptimize(trace::Executor::run(program, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pipeline().exec.total_fetches));
}

// Lowering a layout into line runs — the fixed cost the compiled-stream
// consumers pay per simulation call. O(static code), not O(trace).
void BM_CompiledStreamBuild(benchmark::State& state) {
  const Pipeline& p = pipeline();
  const auto cache = workloads::paper_cache_for("mpeg");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        traceopt::compile_fetch_stream(p.tp, p.layout, cache.line_size));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ConflictGraphBuild(benchmark::State& state) {
  const Pipeline& p = pipeline();
  conflict::BuildOptions opt;
  opt.cache = workloads::paper_cache_for("mpeg");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conflict::build_conflict_graph(p.tp, p.layout, p.exec.walk, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(p.exec.total_fetches));
}

void BM_ConflictGraphBuildWordRef(benchmark::State& state) {
  const Pipeline& p = pipeline();
  conflict::BuildOptions opt;
  opt.cache = workloads::paper_cache_for("mpeg");
  opt.use_compiled_stream = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conflict::build_conflict_graph(p.tp, p.layout, p.exec.walk, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(p.exec.total_fetches));
}

void BM_HierarchySimulation(benchmark::State& state) {
  const Pipeline& p = pipeline();
  const auto cache = workloads::paper_cache_for("mpeg");
  const auto energies = energy::EnergyTable::build(cache, 512, 0, 0);
  const std::vector<bool> none(p.tp.object_count(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::simulate_spm_system(
        p.tp, p.layout, p.exec.walk, none, cache, energies));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(p.exec.total_fetches));
}

void BM_HierarchySimulationWordRef(benchmark::State& state) {
  const Pipeline& p = pipeline();
  const auto cache = workloads::paper_cache_for("mpeg");
  const auto energies = energy::EnergyTable::build(cache, 512, 0, 0);
  const std::vector<bool> none(p.tp.object_count(), false);
  memsim::SimOptions opt;
  opt.use_compiled_stream = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::simulate_spm_system(
        p.tp, p.layout, p.exec.walk, none, cache, energies, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(p.exec.total_fetches));
}

// The mpeg fetch stream at line granularity (compiled-stream runs in walk
// order) — exactly what one sweep group replays.
struct SweepStream {
  std::vector<trace::LineRun> runs;
  std::uint64_t total_words = 0;
};

const SweepStream& sweep_stream() {
  static const SweepStream s = [] {
    const Pipeline& p = pipeline();
    const trace::CompiledStream stream =
        traceopt::compile_fetch_stream(p.tp, p.layout, 16);
    SweepStream out;
    for (const BasicBlockId bb : p.exec.walk.seq) {
      for (const trace::LineRun& r : stream.runs(bb)) {
        out.runs.push_back(r);
        out.total_words += r.words;
      }
    }
    return out;
  }();
  return s;
}

// The 16-configuration LRU family the sweep gate measures: set counts
// {8,16,32,64} x associativities {1,2,4,8} at 16-byte lines (128 B – 8 KiB).
cachesim::ConfigFamily sweep_family() {
  cachesim::ConfigFamily fam;
  fam.line_size = 16;
  for (unsigned sets = 8; sets <= 64; sets *= 2) {
    for (unsigned assoc = 1; assoc <= 8; assoc *= 2) {
      cachesim::CacheConfig cfg;
      cfg.line_size = fam.line_size;
      cfg.associativity = assoc;
      cfg.size = static_cast<Bytes>(sets) * assoc * fam.line_size;
      fam.configs.push_back(cfg);
    }
  }
  return fam;
}

// One-pass multi-configuration simulation: the whole 16-config family from
// a single stack-distance replay of the mpeg stream. Items = simulated word
// fetches x configurations, so the items/sec ratio to
// BM_StackSweepPerConfigRef is the sweep speedup tools/bench_check.sh gates
// (>= 3x).
void BM_StackSweep(benchmark::State& state) {
  const SweepStream& s = sweep_stream();
  const cachesim::ConfigFamily family = sweep_family();
  for (auto _ : state) {
    cachesim::StackSimulator sim(family);
    for (const trace::LineRun& r : s.runs) sim.access_line(r.addr, r.words);
    for (const cachesim::CacheConfig& cfg : family.configs) {
      benchmark::DoNotOptimize(sim.counters(cfg));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(s.total_words * family.configs.size()));
}

// The same 16 configurations replayed one Cache at a time — what a sweep
// cost before the stack engine, on identical inputs and item accounting.
void BM_StackSweepPerConfigRef(benchmark::State& state) {
  const SweepStream& s = sweep_stream();
  const cachesim::ConfigFamily family = sweep_family();
  for (auto _ : state) {
    for (const cachesim::CacheConfig& cfg : family.configs) {
      cachesim::Cache cache(cfg);
      for (const trace::LineRun& r : s.runs) cache.access_line(r.addr, r.words);
      benchmark::DoNotOptimize(cache.hits());
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(s.total_words * family.configs.size()));
}

// A fixed 8-point CASA sweep on adpcm through Workbench::evaluate_batch;
// the thread count is the benchmark argument. Items = sweep points evaluated;
// on a multi-core host items/sec should rise near-linearly with the
// argument (a single-core host shows flat numbers — the determinism test
// still covers correctness there).
void BM_ParallelSweep(benchmark::State& state) {
  static const prog::Program program = workloads::make_adpcm();
  static const report::Workbench bench(program);
  const unsigned threads = static_cast<unsigned>(state.range(0));

  std::vector<report::Workbench::Job> jobs;
  for (const Bytes spm : {64u, 128u, 256u, 512u}) {
    for (const Bytes cache_size : {128u, 256u}) {
      cachesim::CacheConfig cache;
      cache.size = cache_size;
      cache.line_size = 16;
      jobs.push_back(report::Workbench::Job::casa_job(cache, spm));
    }
  }

  report::BatchOptions bopt;
  bopt.threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.evaluate_batch(jobs, bopt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}

// Tracing overhead on the hot path. Each item is a small xorshift mix (a
// stand-in for real per-phase work) plus, in the variants, an obs::Span.
// With no registry and no tracer attached a Span must cost one relaxed
// atomic load: tools/bench_check.sh gates Null/Off >= 0.85 (within noise).
// The Tracing variant is informational — it prices a fully recorded span.
inline std::uint64_t mix_block(std::uint64_t x) {
  for (int i = 0; i < 32; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

void BM_TraceOverheadOff(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    x = mix_block(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Disarmed fault-site overhead on the same kernel: a fault::at with no
// spec armed must cost one relaxed atomic load, so the injection points
// embedded in the pipeline are free in production. tools/bench_check.sh
// gates FaultCheckOff/Off >= 0.85 (within noise), the same contract as the
// null-tracer span.
void BM_FaultCheckOff(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    casa::fault::at(casa::fault::site_names::kSolverAllocate);
    x = mix_block(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TraceOverheadNull(benchmark::State& state) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    const obs::Span span(nullptr, "bench");  // no registry, no tracer
    x = mix_block(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TraceOverheadTracing(benchmark::State& state) {
  // A fresh tracer every 2^14 spans keeps the ring from filling, so the
  // timed region always prices real event recording, never the (cheaper)
  // drop-newest path of a saturated buffer.
  std::optional<obs::Tracer> tracer;
  const auto reset = [&tracer] {
    obs::Tracer::set_current(nullptr);
    tracer.emplace();
    obs::Tracer::set_current(&*tracer);
  };
  reset();
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  std::uint32_t spans = 0;
  for (auto _ : state) {
    if (++spans == (1u << 14)) {
      state.PauseTiming();
      reset();
      spans = 0;
      state.ResumeTiming();
    }
    const obs::Span span(nullptr, "bench");
    x = mix_block(x);
    benchmark::DoNotOptimize(x);
  }
  obs::Tracer::set_current(nullptr);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Serve-cache pricing: one evaluation through svc::EvalService as a miss
// (flush + full Steinke pipeline recompute) vs as a content-addressed hit
// (key derivation + LRU lookup + stored-bytes copy). Both share one
// resident service, so the Workbench profiling run is priced into
// neither. tools/bench_check.sh gates Hit/Miss >= 10x — the ratio the
// serving model exists to deliver.
svc::EvalService& serve_service() {
  static svc::EvalService service;
  return service;
}

report::Workbench::Job serve_job() {
  return report::Workbench::Job::steinke_job(
      workloads::paper_cache_for("adpcm"), 256);
}

void BM_ServeCacheMiss(benchmark::State& state) {
  svc::EvalService& service = serve_service();
  const report::Workbench::Job job = serve_job();
  (void)service.evaluate("adpcm", job);  // profile the workload untimed
  for (auto _ : state) {
    service.flush();  // every iteration is a genuine recompute
    svc::EvalResponse resp = service.evaluate("adpcm", job);
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ServeCacheHit(benchmark::State& state) {
  svc::EvalService& service = serve_service();
  const report::Workbench::Job job = serve_job();
  (void)service.evaluate("adpcm", job);  // warm the cache untimed
  for (auto _ : state) {
    svc::EvalResponse resp = service.evaluate("adpcm", job);
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_RawCacheAccess)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_RawCacheAccessLine)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_Executor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompiledStreamBuild);
BENCHMARK(BM_ConflictGraphBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConflictGraphBuildWordRef)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HierarchySimulation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HierarchySimulationWordRef)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StackSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StackSweepPerConfigRef)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_ServeCacheMiss)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeCacheHit);
BENCHMARK(BM_TraceOverheadOff);
BENCHMARK(BM_FaultCheckOff);
BENCHMARK(BM_TraceOverheadNull);
BENCHMARK(BM_TraceOverheadTracing);
BENCHMARK_MAIN();

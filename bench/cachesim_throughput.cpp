// Substrate throughput: executor, cache simulator, conflict-graph builder
// and full hierarchy simulation on the MPEG workload. These bound the cost
// of every experiment in the repo (items/second = simulated fetches/s for
// the cache-level benchmarks).
#include <benchmark/benchmark.h>

#include <memory>

#include "casa/cachesim/cache.hpp"
#include "casa/conflict/graph_builder.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/memsim/hierarchy.hpp"
#include "casa/support/rng.hpp"
#include "casa/trace/executor.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

namespace {

using namespace casa;

struct Pipeline {
  prog::Program program = workloads::make_mpeg();
  trace::ExecutionResult exec = trace::Executor::run(program);
  traceopt::TraceProgram tp = traceopt::form_traces(program, exec.profile,
                                                    topts());
  traceopt::Layout layout = traceopt::layout_all(tp);

  static traceopt::TraceFormationOptions topts() {
    traceopt::TraceFormationOptions o;
    o.max_trace_size = 512;
    return o;
  }
};

const Pipeline& pipeline() {
  static const Pipeline p;
  return p;
}

void BM_RawCacheAccess(benchmark::State& state) {
  cachesim::CacheConfig cfg;
  cfg.size = 2_KiB;
  cfg.line_size = 16;
  cfg.associativity = static_cast<unsigned>(state.range(0));
  cachesim::Cache cache(cfg);
  Rng rng(1);
  // Pre-generate an address stream resembling instruction fetch (mostly
  // sequential, occasional jumps).
  std::vector<Addr> stream(1 << 16);
  Addr pc = 0;
  for (auto& a : stream) {
    if (rng.next_bool(0.1)) pc = rng.next_below(32 * 1024) & ~3ull;
    a = pc;
    pc += 4;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(stream[i]));
    i = (i + 1) & (stream.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Executor(benchmark::State& state) {
  const prog::Program program = workloads::make_mpeg();
  for (auto _ : state) {
    trace::ExecutorOptions opt;
    opt.record_walk = false;
    benchmark::DoNotOptimize(trace::Executor::run(program, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pipeline().exec.total_fetches));
}

void BM_ConflictGraphBuild(benchmark::State& state) {
  const Pipeline& p = pipeline();
  conflict::BuildOptions opt;
  opt.cache = workloads::paper_cache_for("mpeg");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conflict::build_conflict_graph(p.tp, p.layout, p.exec.walk, opt));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(p.exec.total_fetches));
}

void BM_HierarchySimulation(benchmark::State& state) {
  const Pipeline& p = pipeline();
  const auto cache = workloads::paper_cache_for("mpeg");
  const auto energies = energy::EnergyTable::build(cache, 512, 0, 0);
  const std::vector<bool> none(p.tp.object_count(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::simulate_spm_system(
        p.tp, p.layout, p.exec.walk, none, cache, energies));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(p.exec.total_fetches));
}

}  // namespace

BENCHMARK(BM_RawCacheAccess)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_Executor)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConflictGraphBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HierarchySimulation)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

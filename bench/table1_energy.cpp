// Table 1 reproduction: overall energy for SP(CASA), SP(Steinke) and
// LC(Ross) across the three Mediabench workloads, with per-row and
// per-benchmark-average improvements.
//
// Paper configuration: direct-mapped I-cache of 128 B (adpcm), 1 kB (g721),
// 2 kB (mpeg); loop cache limited to 4 regions. Absolute microjoules depend
// on the energy constants (DESIGN.md §2) — the comparisons are the result.
#include <iostream>
#include <vector>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  std::cout << "Table 1 — overall energy savings (paper's Table 1 layout)\n\n";

  Table table({"benchmark", "mem B", "SP(CASA) uJ", "SP(Steinke) uJ",
               "LC(Ross) uJ", "CASAvsSteinke %", "CASAvsLC %"});

  double total_vs_steinke = 0.0, total_vs_lc = 0.0;
  int rows = 0;

  for (const std::string name : {"adpcm", "g721", "mpeg"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);

    double bench_vs_steinke = 0.0, bench_vs_lc = 0.0;
    int bench_rows = 0;
    for (const Bytes size : workloads::paper_spm_sizes_for(name)) {
      const report::Outcome c = bench.evaluate(report::Workbench::Job::casa_job(cache, size)).value();
      const report::Outcome s = bench.evaluate(report::Workbench::Job::steinke_job(cache, size)).value();
      const report::Outcome l = bench.evaluate(report::Workbench::Job::loopcache_job(cache, size, 4)).value();

      const double vs_steinke =
          100.0 * (1.0 - c.sim.total_energy / s.sim.total_energy);
      const double vs_lc =
          100.0 * (1.0 - c.sim.total_energy / l.sim.total_energy);
      bench_vs_steinke += vs_steinke;
      bench_vs_lc += vs_lc;
      ++bench_rows;

      table.row()
          .cell(bench_rows == 1
                    ? name + " (" + std::to_string(program.code_size()) + "B)"
                    : std::string())
          .cell(size)
          .cell(to_micro_joules(c.sim.total_energy), 2)
          .cell(to_micro_joules(s.sim.total_energy), 2)
          .cell(to_micro_joules(l.sim.total_energy), 2)
          .cell(vs_steinke, 1)
          .cell(vs_lc, 1);
    }
    table.row()
        .cell("")
        .cell("avg")
        .cell("")
        .cell("")
        .cell("")
        .cell(bench_vs_steinke / bench_rows, 1)
        .cell(bench_vs_lc / bench_rows, 1);
    table.separator();

    total_vs_steinke += bench_vs_steinke;
    total_vs_lc += bench_vs_lc;
    rows += bench_rows;
  }

  table.print(std::cout);
  std::cout << "\nOverall average savings: CASA vs Steinke "
            << total_vs_steinke / rows << "% (paper: 21.1%), CASA vs loop"
            << " cache " << total_vs_lc / rows << "% (paper: 28.6%)\n";
  return 0;
}

// Figure 5 reproduction: scratchpad+CASA vs preloaded loop cache (Ross /
// Gordon-Ross & Vahid) on the MPEG workload.
//
// Setup per the paper: direct-mapped 2 kB I-cache; the loop cache holds at
// most 4 preloadable regions; loop-cache numbers are the 100% baseline.
// Expected shape: at small sizes the loop cache keeps up; as capacity grows
// its fixed region count caps coverage while the scratchpad keeps absorbing
// objects — CASA pulls ahead (paper: ~26% average energy advantage).
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  const prog::Program program = workloads::make_mpeg();
  const report::Workbench bench(program);
  const cachesim::CacheConfig cache = workloads::paper_cache_for("mpeg");

  std::cout << "Figure 5 — CASA scratchpad vs preloaded loop cache, MPEG, "
            << cache.size << "B direct-mapped I-cache (loop cache = 100%)\n\n";

  Table table({"size B", "SP/LC acc %", "IC acc %", "IC miss %", "energy %",
               "CASA uJ", "LC uJ", "LC regions"});

  double geo = 0.0;
  int n = 0;
  for (const Bytes size : workloads::paper_spm_sizes_for("mpeg")) {
    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, size)).value();
    const report::Outcome lc = bench.evaluate(report::Workbench::Job::loopcache_job(cache, size, 4)).value();

    const auto pct = [](double v, double base) {
      return base == 0.0 ? 0.0 : 100.0 * v / base;
    };
    const auto& c = casa_run.sim.counters;
    const auto& l = lc.sim.counters;

    const double energy_pct =
        pct(casa_run.sim.total_energy, lc.sim.total_energy);
    geo += 100.0 - energy_pct;
    ++n;

    table.row()
        .cell(size)
        .cell(pct(static_cast<double>(c.spm_accesses),
                  static_cast<double>(l.lc_accesses)),
              1)
        .cell(pct(static_cast<double>(c.cache_accesses),
                  static_cast<double>(l.cache_accesses)),
              1)
        .cell(pct(static_cast<double>(c.cache_misses),
                  static_cast<double>(l.cache_misses)),
              1)
        .cell(energy_pct, 1)
        .cell(to_micro_joules(casa_run.sim.total_energy), 1)
        .cell(to_micro_joules(lc.sim.total_energy), 1)
        .cell(static_cast<std::uint64_t>(lc.lc_regions()));
  }

  table.print(std::cout);
  std::cout << "\nAverage energy reduction vs loop cache: " << (geo / n)
            << "% (paper: ~26% on MPEG)\n";
  return 0;
}

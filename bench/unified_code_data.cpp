// Extension bench — unified code+data scratchpad allocation (paper §7
// future work: "preloading of data").
//
// For adpcm / g721 / gsm with their data specs: a shared scratchpad is
// filled by (a) code-only CASA, (b) data-only, (c) unified cache-aware,
// (d) unified Steinke (access counts, conflict-blind). Reported energy is
// the simulated I-side + D-side total under each assignment.
#include <iostream>

#include "casa/conflict/graph_builder.hpp"
#include "casa/data/data_sim.hpp"
#include "casa/data/unified_alloc.hpp"
#include "casa/energy/energy_table.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  std::cout << "Unified code+data scratchpad allocation (D-cache = I-cache"
               " geometry)\n\n";

  Table table({"workload", "SPM B", "code-only uJ", "data-only uJ",
               "unified uJ", "steinke-unified uJ", "unified code/data B"});

  for (const std::string name : {"adpcm", "g721", "gsm"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);
    const data::DataSpec spec = data::data_spec_for(program, name);

    for (const Bytes spm : workloads::paper_spm_sizes_for(name)) {
      traceopt::TraceFormationOptions topt;
      topt.cache_line_size = cache.line_size;
      topt.max_trace_size = spm;
      const auto tp =
          traceopt::form_traces(program, bench.execution().profile, topt);
      const auto layout = traceopt::layout_all(tp);
      conflict::BuildOptions bopt;
      bopt.cache = cache;
      const auto code_graph = conflict::build_conflict_graph(
          tp, layout, bench.execution().walk, bopt);
      const auto data_prof = data::profile_data(
          program, bench.execution().walk, spec, cache);

      const auto ienergy = energy::EnergyTable::build(cache, spm, 0, 0);
      const auto denergy = data::DataEnergy::build(cache, spm);

      data::UnifiedProblem up;
      up.code_graph = &code_graph;
      for (const auto& mo : tp.objects()) up.code_sizes.push_back(mo.raw_size);
      up.data_graph = &data_prof.graph;
      for (const auto& obj : spec.objects()) up.data_sizes.push_back(obj.size);
      up.capacity = spm;
      up.e_icache_hit = ienergy.cache_hit;
      up.e_icache_miss = ienergy.cache_miss;
      up.e_dcache_hit = denergy.dcache_hit;
      up.e_dcache_miss = denergy.dcache_miss;
      up.e_spm = ienergy.spm_access;

      const auto evaluate = [&](const data::UnifiedResult& r) {
        const auto icode = memsim::simulate_spm_system(
            tp, layout, bench.execution().walk, r.code_on_spm, cache,
            ienergy);
        const auto dside = data::simulate_data(
            program, bench.execution().walk, spec, r.data_on_spm, cache,
            denergy);
        return icode.total_energy + dside.total_energy;
      };

      const double code_only = evaluate(data::allocate_code_only(up));
      const double data_only = evaluate(data::allocate_data_only(up));
      const data::UnifiedResult uni = data::allocate_unified(up);
      const double unified = evaluate(uni);
      const double steinke = evaluate(data::allocate_unified_steinke(up));

      Bytes code_bytes = 0, data_bytes = 0;
      for (std::size_t i = 0; i < uni.code_on_spm.size(); ++i) {
        if (uni.code_on_spm[i]) code_bytes += up.code_sizes[i];
      }
      for (std::size_t i = 0; i < uni.data_on_spm.size(); ++i) {
        if (uni.data_on_spm[i]) data_bytes += up.data_sizes[i];
      }

      table.row()
          .cell(name)
          .cell(spm)
          .cell(to_micro_joules(code_only), 1)
          .cell(to_micro_joules(data_only), 1)
          .cell(to_micro_joules(unified), 1)
          .cell(to_micro_joules(steinke), 1)
          .cell(std::to_string(code_bytes) + "/" + std::to_string(data_bytes));
    }
    table.separator();
  }

  table.print(std::cout);
  std::cout << "\nUnified allocation should dominate both single-side"
               " restrictions; the gap to the conflict-blind baseline is"
               " the cache-awareness payoff on the combined problem.\n";
  return 0;
}

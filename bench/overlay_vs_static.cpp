// Extension bench — scratchpad overlay (paper §7 future work: "dynamic
// copying (overlay) of memory objects on the scratchpad").
//
// Compares, per workload and scratchpad size: static CASA (one residency
// for the whole run) against phase-aware overlay allocation (residency may
// change at phase boundaries, copies paid explicitly). Overlay should win
// on phase-structured programs (epic: filter pyramid then entropy coding)
// and tie on single-phase ones (adpcm).
#include <iostream>

#include "casa/overlay/overlay_ilp.hpp"
#include "casa/overlay/overlay_sim.hpp"
#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/traceopt/layout.hpp"
#include "casa/traceopt/trace_formation.hpp"
#include "casa/workloads/workloads.hpp"

using namespace casa;

int main() {
  std::cout << "Overlay vs static scratchpad allocation (4 phases, copies"
               " charged per word)\n\n";

  Table table({"workload", "SPM B", "static uJ", "overlay uJ", "gain %",
               "copies", "copy uJ", "exact"});

  for (const std::string name : {"adpcm", "epic", "g721"}) {
    const prog::Program program = workloads::by_name(name);
    const report::Workbench bench(program);
    const auto cache = workloads::paper_cache_for(name);

    for (const Bytes spm : workloads::paper_spm_sizes_for(name)) {
      traceopt::TraceFormationOptions topt;
      topt.cache_line_size = cache.line_size;
      topt.max_trace_size = spm;
      const auto tp = traceopt::form_traces(
          program, bench.execution().profile, topt);
      const auto layout = traceopt::layout_all(tp);

      overlay::PhaseProfileOptions popt;
      popt.phase_count = 4;
      popt.cache = cache;
      const overlay::PhaseProfile prof = overlay::build_phase_profile(
          tp, layout, bench.execution().walk, popt);

      const auto energies = energy::EnergyTable::build(cache, spm, 0, 0);
      const overlay::OverlayProblem problem =
          overlay::OverlayProblem::from(prof, tp, energies, spm);

      const overlay::OverlayResult dyn = overlay::allocate_overlay(problem);
      const overlay::OverlayResult fixed = overlay::allocate_static(problem);

      const overlay::OverlaySimReport sim_dyn = overlay::simulate_overlay(
          tp, layout, bench.execution().walk, prof, dyn.residency, cache,
          energies);
      const overlay::OverlaySimReport sim_fix = overlay::simulate_overlay(
          tp, layout, bench.execution().walk, prof, fixed.residency, cache,
          energies);

      table.row()
          .cell(name)
          .cell(spm)
          .cell(to_micro_joules(sim_fix.total_energy()), 1)
          .cell(to_micro_joules(sim_dyn.total_energy()), 1)
          .cell(100.0 * (1.0 - sim_dyn.total_energy() /
                                   sim_fix.total_energy()),
                2)
          .cell(sim_dyn.copies)
          .cell(to_micro_joules(sim_dyn.copy_energy), 2)
          .cell(dyn.exact ? "yes" : "no");
    }
    table.separator();
  }

  table.print(std::cout);
  std::cout << "\n(The candidate set is capped at 12 objects per ILP; the"
               " static column goes through the same machinery so the"
               " comparison is like-for-like.)\n";
  return 0;
}

// Figure 4 reproduction: CASA vs Steinke (DATE'02) on the MPEG workload.
//
// Setup per the paper: direct-mapped 2 kB I-cache, 16 B lines; scratchpad
// sizes swept; every metric reported as a percentage of Steinke's value
// (Steinke = 100%). Expected shape (paper §6): CASA shows *more* I-cache
// accesses and *fewer* scratchpad accesses than Steinke, yet far fewer
// I-cache misses — and up to ~60% lower energy at the sizes where conflict
// misses dominate.
#include <iostream>

#include "casa/report/workbench.hpp"
#include "casa/support/table.hpp"
#include "casa/workloads/workloads.hpp"

int main() {
  using namespace casa;

  const prog::Program program = workloads::make_mpeg();
  const report::Workbench bench(program);
  const cachesim::CacheConfig cache = workloads::paper_cache_for("mpeg");

  std::cout << "Figure 4 — CASA vs Steinke, MPEG, " << cache.size
            << "B direct-mapped I-cache (Steinke = 100%)\n\n";

  Table table({"SPM B", "SP acc %", "IC acc %", "IC miss %", "energy %",
               "CASA uJ", "Steinke uJ", "engine", "nodes", "solve s"});

  for (const Bytes spm : workloads::paper_spm_sizes_for("mpeg")) {
    const report::Outcome casa_run = bench.evaluate(report::Workbench::Job::casa_job(cache, spm)).value();
    const report::Outcome steinke = bench.evaluate(report::Workbench::Job::steinke_job(cache, spm)).value();

    const auto pct = [](double v, double base) {
      return base == 0.0 ? 0.0 : 100.0 * v / base;
    };
    const auto& c = casa_run.sim.counters;
    const auto& s = steinke.sim.counters;

    table.row()
        .cell(spm)
        .cell(pct(static_cast<double>(c.spm_accesses),
                  static_cast<double>(s.spm_accesses)),
              1)
        .cell(pct(static_cast<double>(c.cache_accesses),
                  static_cast<double>(s.cache_accesses)),
              1)
        .cell(pct(static_cast<double>(c.cache_misses),
                  static_cast<double>(s.cache_misses)),
              1)
        .cell(pct(casa_run.sim.total_energy, steinke.sim.total_energy), 1)
        .cell(to_micro_joules(casa_run.sim.total_energy), 1)
        .cell(to_micro_joules(steinke.sim.total_energy), 1)
        .cell(core::to_string(casa_run.alloc().engine_used))
        .cell(casa_run.alloc().solver_nodes)
        .cell(casa_run.alloc().solve_seconds, 3);
  }

  table.print(std::cout);
  std::cout << "\nPaper reference: CASA conserves up to 60% energy against"
               " Steinke's algorithm on MPEG;\nI-cache accesses higher and"
               " SP accesses lower than Steinke at every size.\n";
  return 0;
}
